"""Render a :class:`repro.web.dom.Page` to an RGB screenshot + click map.

Mirrors the paper's rendering parameters: images are 1,080 pixels wide
and optionally cropped at a maximum pixel height (PH, 10k in the paper)
"to allow a user to scroll down ... while avoiding to waste broadcasted
data" (Section 3.2).  The renderer also emits the click map used for
interactivity, and both scale together by the device scaling factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import derive_rng
from repro.web import font
from repro.web.clickmap import ClickMap, ClickRegion
from repro.web.dom import (
    AdBanner,
    Divider,
    Footer,
    Header,
    Heading,
    ImageBlock,
    LinkGrid,
    LinkList,
    Page,
    Paragraph,
    SearchBox,
    Thumbnail,
)

__all__ = ["PageRenderer", "RenderResult"]

_WHITE = (255, 255, 255)
_TEXT = (75, 75, 75)
_LINK = (18, 60, 160)
_RULE = (210, 210, 210)

_HEADING_SCALE = {1: 4, 2: 3, 3: 2}
_BODY_SCALE = 2
_MARGIN = 36
_LINE_GAP = 16


@dataclass
class RenderResult:
    """A rendered screenshot and its interactivity map."""

    image: np.ndarray  # (H, W, 3) uint8
    clickmap: ClickMap
    full_height: int  # layout height before any PH crop

    @property
    def cropped(self) -> bool:
        return self.image.shape[0] < self.full_height

    def scaled(self, factor: float) -> "RenderResult":
        """Resize image and click map by the device scaling factor.

        Nearest-neighbour resampling — the cheap operation a low-end
        phone can afford (paper Section 3.2).
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        h, w = self.image.shape[:2]
        new_h, new_w = max(1, int(h * factor)), max(1, int(w * factor))
        rows = np.minimum((np.arange(new_h) / factor).astype(np.int64), h - 1)
        cols = np.minimum((np.arange(new_w) / factor).astype(np.int64), w - 1)
        image = self.image[rows][:, cols]
        return RenderResult(image, self.clickmap.scaled(factor), int(self.full_height * factor))


class _FlatCanvas:
    """Grow-down surface over one doubling buffer: O(1) row addressing.

    Same drawing interface as the chunked reference :class:`_Canvas`,
    but every primitive is a direct slice of a single array — no chunk
    walk per blit, no final concatenate.  The buffer can be recycled
    across renders (see :attr:`PageRenderer._buf`), so a warm renderer
    never reallocates.
    """

    def __init__(self, width: int, buf: np.ndarray | None = None) -> None:
        self.width = width
        if buf is None or buf.shape[1] != width:
            buf = np.empty((2048, width, 3), dtype=np.uint8)
        self._buf = buf
        self.y = 0

    def extend(self, height: int, color=_WHITE) -> int:
        """Append ``height`` rows of ``color``; returns their start y."""
        need = self.y + height
        buf = self._buf
        if need > buf.shape[0]:
            cap = buf.shape[0]
            while cap < need:
                cap *= 2
            grown = np.empty((cap, self.width, 3), dtype=np.uint8)
            grown[: self.y] = buf[: self.y]
            self._buf = buf = grown
        buf[self.y : need] = color
        start = self.y
        self.y = need
        return start

    def fill_rect(self, x: int, y: int, w: int, h: int, color) -> None:
        self._buf[y : y + h, x : x + w] = color

    def blit_mask(self, x: int, y: int, mask: np.ndarray, color) -> None:
        w = min(mask.shape[1], self.width - x)
        region = self._buf[y : y + mask.shape[0], x : x + w]
        region[mask[:, :w]] = color

    def paste(self, x: int, y: int, tile: np.ndarray) -> None:
        w = min(tile.shape[1], self.width - x)
        self._buf[y : y + tile.shape[0], x : x + w] = tile[:, :w]

    def image(self, limit: int | None = None) -> np.ndarray:
        h = self.y if limit is None else min(self.y, limit)
        if h == 0:
            return np.full((1, self.width, 3), 255, dtype=np.uint8)
        return self._buf[:h].copy()


class _Canvas:
    """Grow-down drawing surface with rectangle/text primitives.

    The seed chunk-list implementation, kept as the golden reference
    (:meth:`PageRenderer.render_ref`) for the flat-buffer fast path.
    """

    def __init__(self, width: int) -> None:
        self.width = width
        self._chunks: list[np.ndarray] = []
        self.y = 0

    def extend(self, height: int, color=_WHITE) -> int:
        """Append ``height`` rows of ``color``; returns their start y."""
        block = np.empty((height, self.width, 3), dtype=np.uint8)
        block[:] = color
        self._chunks.append(block)
        start = self.y
        self.y += height
        return start

    def _locate(self, y: int) -> tuple[np.ndarray, int]:
        offset = 0
        for chunk in self._chunks:
            if y < offset + chunk.shape[0]:
                return chunk, y - offset
            offset += chunk.shape[0]
        raise IndexError(f"row {y} beyond canvas height {self.y}")

    def fill_rect(self, x: int, y: int, w: int, h: int, color) -> None:
        remaining = h
        row = y
        while remaining > 0:
            chunk, local = self._locate(row)
            span = min(remaining, chunk.shape[0] - local)
            chunk[local : local + span, x : x + w] = color
            row += span
            remaining -= span

    def blit_mask(self, x: int, y: int, mask: np.ndarray, color) -> None:
        remaining = mask.shape[0]
        src = 0
        row = y
        while remaining > 0:
            chunk, local = self._locate(row)
            span = min(remaining, chunk.shape[0] - local)
            w = min(mask.shape[1], self.width - x)
            region = chunk[local : local + span, x : x + w]
            region[mask[src : src + span, :w]] = color
            row += span
            src += span
            remaining -= span

    def paste(self, x: int, y: int, tile: np.ndarray) -> None:
        remaining = tile.shape[0]
        src = 0
        row = y
        while remaining > 0:
            chunk, local = self._locate(row)
            span = min(remaining, chunk.shape[0] - local)
            w = min(tile.shape[1], self.width - x)
            chunk[local : local + span, x : x + w] = tile[src : src + span, :w]
            row += span
            src += span
            remaining -= span

    def image(self) -> np.ndarray:
        if not self._chunks:
            return np.full((1, self.width, 3), 255, dtype=np.uint8)
        return np.concatenate(self._chunks, axis=0)


def _procedural_photo(width: int, height: int, seed: int) -> np.ndarray:
    """A deterministic photo-like texture: gradient + soft blobs.

    The distance and gradient fields are separable in x and y, so the
    full-grid squares collapse to two 1-D vectors plus one broadcast add
    — per element the same float ops in the same order as the dense
    grids they replace, so output bytes are unchanged.
    """
    rng = derive_rng(seed, "photo")
    ys = np.arange(height, dtype=np.int64)[:, None]
    xs = np.arange(width, dtype=np.int64)[None, :]
    base = np.zeros((height, width, 3), dtype=np.float64)
    c0 = rng.uniform(40, 215, 3)
    c1 = rng.uniform(40, 215, 3)
    t = (xs + ys) / max(width + height - 2, 1)
    # Broadcast over the channel axis: per element these are the same
    # float ops in the same order as the per-channel loops they replace.
    base[:] = c0 + (c1 - c0) * t[..., None]
    tmp = np.empty_like(base)
    for _ in range(6):
        cx, cy = rng.uniform(0, width), rng.uniform(0, height)
        radius = rng.uniform(0.1, 0.35) * min(width, height)
        color = rng.uniform(0, 255, 3)
        blob = (xs - cx) ** 2 + (ys - cy) ** 2
        blob /= 2 * radius**2
        np.negative(blob, out=blob)
        np.exp(blob, out=blob)
        np.subtract(color, base, out=tmp)
        np.multiply(tmp, blob[..., None], out=tmp)
        tmp *= 0.7
        base += tmp
    return np.clip(base, 0, 255).astype(np.uint8)


class PageRenderer:
    """Layout engine: stacks page elements into a screenshot."""

    #: Bounds on the per-renderer raster caches (entries, not bytes).
    TEXT_CACHE_CAP = 2048
    WORD_CACHE_CAP = 8192

    def __init__(self, width: int = 1080, max_height: int | None = 10_000) -> None:
        if width < 200:
            raise ValueError("width must be at least 200 px")
        self.width = width
        self.max_height = max_height
        # Warm state a persistent renderer carries between pages: the
        # canvas buffer plus (text, scale) -> mask raster caches.  The
        # site corpus draws from a small vocabulary, so word rasters hit
        # almost always after the first few pages.
        self._buf: np.ndarray | None = None
        self._text_cache: dict[tuple[str, int], np.ndarray] = {}
        self._word_cache: dict[tuple[str, int], np.ndarray] = {}
        self._wrap_cache: dict[tuple[str, int], list[str]] = {}
        self._ref = False  # render_ref(): bypass caches, seed primitives

    # -- text helpers ----------------------------------------------------------

    #: Body text occupies a reading column, not the full viewport —
    #: mobile pages keep measure around 60 characters.
    TEXT_COLUMN_FRACTION = 0.72

    def _wrap(self, text: str, scale: int) -> list[str]:
        usable = int((self.width - 2 * _MARGIN) * self.TEXT_COLUMN_FRACTION)
        per_char = (font.GLYPH_WIDTH + 1) * scale
        max_chars = max(8, usable // per_char)
        words = text.split()
        lines: list[str] = []
        current = ""
        for word in words:
            candidate = f"{current} {word}".strip()
            if len(candidate) <= max_chars:
                current = candidate
            else:
                if current:
                    lines.append(current)
                current = word[:max_chars]
        if current:
            lines.append(current)
        return lines or [""]

    def _wrap_cached(self, text: str, scale: int) -> list[str]:
        if self._ref:
            return self._wrap(text, scale)
        key = (text, scale)
        lines = self._wrap_cache.get(key)
        if lines is None:
            lines = self._wrap(text, scale)
            cache = self._wrap_cache
            cache[key] = lines
            if len(cache) > self.TEXT_CACHE_CAP:
                cache.pop(next(iter(cache)))
        return lines

    def _text_raster(self, text: str, scale: int) -> np.ndarray:
        """A (cached) rendered text mask; the ref path re-renders per call."""
        if self._ref:
            return font.render_text_ref(text, scale=scale)
        key = (text, scale)
        cache = self._text_cache
        mask = cache.get(key)
        if mask is None:
            mask = self._assemble_text(text, scale)
            cache[key] = mask
            if len(cache) > self.TEXT_CACHE_CAP:
                cache.pop(next(iter(cache)))
        return mask

    def _assemble_text(self, text: str, scale: int) -> np.ndarray:
        """Concatenate per-word rasters: a word's glyph columns are the
        same whether rendered alone or mid-line (fixed glyph pitch), and
        the single-space gap between words is exactly 7*scale blank
        columns, so the concatenation is bit-identical to rendering the
        whole line at once."""
        words = text.split(" ")
        if len(words) == 1 or "" in words:
            return font.render_text(text, scale=scale)
        wcache = self._word_cache
        gap = np.zeros((font.GLYPH_HEIGHT * scale, 7 * scale), dtype=bool)
        parts: list[np.ndarray] = []
        for i, word in enumerate(words):
            if i:
                parts.append(gap)
            mask = wcache.get((word, scale))
            if mask is None:
                mask = font.render_text(word, scale=scale)
                wcache[(word, scale)] = mask
                if len(wcache) > self.WORD_CACHE_CAP:
                    wcache.pop(next(iter(wcache)))
            parts.append(mask)
        return np.concatenate(parts, axis=1)

    def _block_height(self, text: str, scale: int) -> int:
        """Exact height :meth:`_draw_text_block` would consume."""
        lines = self._wrap_cached(text, scale)
        return (font.GLYPH_HEIGHT * scale + _LINE_GAP) * len(lines) + _LINE_GAP

    def _draw_text_block(
        self, canvas: _Canvas, text: str, scale: int, color, x: int | None = None
    ) -> tuple[int, int, int]:
        """Draw wrapped text; returns (y, height, max_line_width)."""
        lines = self._wrap_cached(text, scale)
        line_h = font.GLYPH_HEIGHT * scale + _LINE_GAP
        y0 = canvas.extend(line_h * len(lines) + _LINE_GAP)
        max_w = 0
        for i, line in enumerate(lines):
            mask = self._text_raster(line, scale)
            canvas.blit_mask(x if x is not None else _MARGIN, y0 + i * line_h, mask, color)
            max_w = max(max_w, mask.shape[1])
        return y0, line_h * len(lines) + _LINE_GAP, max_w

    # -- element renderers ----------------------------------------------------------

    def _render_header(self, canvas: _Canvas, el: Header, clickmap: ClickMap) -> None:
        bar_h = 96
        y0 = canvas.extend(bar_h, el.color)
        title_mask = self._text_raster(el.title, 4)
        canvas.blit_mask(_MARGIN, y0 + 16, title_mask, _WHITE)
        x = _MARGIN
        nav_y = y0 + 64
        for label, href in el.nav_items:
            mask = self._text_raster(label, 2)
            w = mask.shape[1]
            if x + w > self.width - _MARGIN:
                break
            canvas.blit_mask(x, nav_y, mask, (220, 230, 255))
            clickmap.add(ClickRegion(x, nav_y, w, mask.shape[0], href))
            x += w + 28

    def _render_heading(self, canvas: _Canvas, el: Heading, clickmap: ClickMap) -> None:
        scale = _HEADING_SCALE.get(el.level, 2)
        color = _LINK if el.href else _TEXT
        y0, h, w = self._draw_text_block(canvas, el.text, scale, color)
        if el.href:
            clickmap.add(ClickRegion(_MARGIN, y0, w, h - _LINE_GAP, el.href))

    def _render_paragraph(self, canvas: _Canvas, el: Paragraph) -> None:
        self._draw_text_block(canvas, el.text, _BODY_SCALE, _TEXT)
        canvas.extend(30)

    def _render_image(self, canvas: _Canvas, el: ImageBlock) -> None:
        w = min(el.width, self.width - 2 * _MARGIN)
        y0 = canvas.extend(el.height + 12)
        canvas.paste(_MARGIN, y0, _procedural_photo(w, el.height, el.seed))
        if el.caption:
            self._draw_text_block(canvas, el.caption, 1, (90, 90, 90))

    def _render_thumbnail(self, canvas: _Canvas, el: Thumbnail) -> None:
        w = min(el.width, self.width - 2 * _MARGIN)
        y0 = canvas.extend(el.height + 8)
        canvas.paste(_MARGIN, y0, _procedural_photo(w, el.height, el.seed))
        # Play-button glyph: centred grey box with a triangle.
        size = min(60, el.height - 8)
        bx = _MARGIN + w // 2 - size // 2
        by = y0 + el.height // 2 - size // 2
        canvas.fill_rect(bx, by, size, size, (60, 60, 60))
        tri = np.zeros((size, size), dtype=bool)
        for row in range(size):
            extent = size // 2 - abs(row - size // 2)
            tri[row, size // 3 : size // 3 + max(0, extent)] = True
        canvas.blit_mask(bx, by, tri, _WHITE)
        self._draw_text_block(canvas, el.label, 1, (120, 120, 120))

    def _render_linklist(self, canvas: _Canvas, el: LinkList, clickmap: ClickMap) -> None:
        for label, href in el.items:
            y0, h, w = self._draw_text_block(canvas, "- " + label, _BODY_SCALE, _LINK)
            clickmap.add(ClickRegion(_MARGIN, y0, w, h - _LINE_GAP, href))
        canvas.extend(8)

    def _render_linkgrid(self, canvas: _Canvas, el: LinkGrid, clickmap: ClickMap) -> None:
        # Dense directory wall: small type, tight leading, full width.
        col_w = (self.width - 2 * _MARGIN) // el.columns
        row_h = font.GLYPH_HEIGHT * 2 + 4
        n_rows = -(-len(el.items) // el.columns)
        y0 = canvas.extend(n_rows * row_h + 8)
        per_char = (font.GLYPH_WIDTH + 1) * 2
        max_chars = max(4, (col_w - 8) // per_char)
        for i, (label, href) in enumerate(el.items):
            row, col = divmod(i, el.columns)
            x = _MARGIN + col * col_w
            y = y0 + row * row_h
            mask = self._text_raster(label[:max_chars], 2)
            canvas.blit_mask(x, y, mask, _LINK)
            clickmap.add(ClickRegion(x, y, mask.shape[1], mask.shape[0], href))

    def _render_searchbox(self, canvas: _Canvas, el: SearchBox, clickmap: ClickMap) -> None:
        box_h = 44
        y0 = canvas.extend(box_h + 12)
        w = self.width - 2 * _MARGIN
        canvas.fill_rect(_MARGIN, y0, w, box_h, (240, 240, 240))
        canvas.fill_rect(_MARGIN, y0, w, 2, _RULE)
        canvas.fill_rect(_MARGIN, y0 + box_h - 2, w, 2, _RULE)
        mask = self._text_raster(el.placeholder, 2)
        canvas.blit_mask(_MARGIN + 12, y0 + 12, mask, (130, 130, 130))
        clickmap.add(ClickRegion(_MARGIN, y0, w, box_h, el.href))

    def _render_ad(self, canvas: _Canvas, el: AdBanner, clickmap: ClickMap) -> None:
        banner_h = 90
        y0 = canvas.extend(banner_h + 10)
        w = self.width - 2 * _MARGIN
        canvas.fill_rect(_MARGIN, y0, w, banner_h, el.color)
        mask = self._text_raster(el.text, 3)
        canvas.blit_mask(_MARGIN + 20, y0 + 30, mask, _WHITE)
        if el.href:
            clickmap.add(ClickRegion(_MARGIN, y0, w, banner_h, el.href))

    def _render_footer(self, canvas: _Canvas, el: Footer, clickmap: ClickMap) -> None:
        foot_h = 80
        y0 = canvas.extend(foot_h, el.color)
        x = _MARGIN
        for label, href in el.items:
            mask = self._text_raster(label, 1)
            w = mask.shape[1]
            if x + w > self.width - _MARGIN:
                break
            canvas.blit_mask(x, y0 + 34, mask, (200, 200, 200))
            clickmap.add(ClickRegion(x, y0 + 34, w, mask.shape[0], href))
            x += w + 24

    # -- layout measurement ----------------------------------------------------

    def _measure(self, el) -> int:
        """Rows ``el`` would add to the canvas, without rasterising.

        Must agree exactly with the corresponding ``_render_*`` method —
        :meth:`render` uses it to price everything below the crop line,
        and the render/render_ref parity tests pin the agreement.
        """
        if isinstance(el, Header):
            return 96
        if isinstance(el, Heading):
            return self._block_height(el.text, _HEADING_SCALE.get(el.level, 2))
        if isinstance(el, Paragraph):
            return self._block_height(el.text, _BODY_SCALE) + 30
        if isinstance(el, ImageBlock):
            h = el.height + 12
            if el.caption:
                h += self._block_height(el.caption, 1)
            return h
        if isinstance(el, Thumbnail):
            return el.height + 8 + self._block_height(el.label, 1)
        if isinstance(el, LinkList):
            return sum(
                self._block_height("- " + label, _BODY_SCALE)
                for label, _ in el.items
            ) + 8
        if isinstance(el, LinkGrid):
            row_h = font.GLYPH_HEIGHT * 2 + 4
            n_rows = -(-len(el.items) // el.columns)
            return n_rows * row_h + 8
        if isinstance(el, SearchBox):
            return 44 + 12
        if isinstance(el, AdBanner):
            return 90 + 10
        if isinstance(el, Divider):
            return el.padding * 2 + 2
        if isinstance(el, Footer):
            return 80
        raise TypeError(f"unknown element type {type(el).__name__}")

    # -- entry point ----------------------------------------------------------

    def _render_element(self, canvas, el, clickmap: ClickMap) -> None:
        if isinstance(el, Header):
            self._render_header(canvas, el, clickmap)
        elif isinstance(el, Heading):
            self._render_heading(canvas, el, clickmap)
        elif isinstance(el, Paragraph):
            self._render_paragraph(canvas, el)
        elif isinstance(el, ImageBlock):
            self._render_image(canvas, el)
        elif isinstance(el, Thumbnail):
            self._render_thumbnail(canvas, el)
        elif isinstance(el, LinkList):
            self._render_linklist(canvas, el, clickmap)
        elif isinstance(el, LinkGrid):
            self._render_linkgrid(canvas, el, clickmap)
        elif isinstance(el, SearchBox):
            self._render_searchbox(canvas, el, clickmap)
        elif isinstance(el, AdBanner):
            self._render_ad(canvas, el, clickmap)
        elif isinstance(el, Divider):
            y0 = canvas.extend(el.padding * 2 + 2)
            canvas.fill_rect(_MARGIN, y0 + el.padding, self.width - 2 * _MARGIN, 2, _RULE)
        elif isinstance(el, Footer):
            self._render_footer(canvas, el, clickmap)
        else:
            raise TypeError(f"unknown element type {type(el).__name__}")

    def render(self, page: Page) -> RenderResult:
        """Lay out and rasterise ``page``; crop at ``max_height`` if set.

        Rasterises only down to the crop line: every element draws
        strictly within the rows its ``extend`` reserved, so once the
        canvas has reached ``max_height`` no later element can touch a
        visible pixel (and its click regions all start below the crop,
        which the region filter would drop anyway).  The remainder is
        *measured* instead, keeping ``full_height`` exact — byte- and
        region-identical to the full rasterisation in
        :meth:`render_ref`, at a fraction of the cost for long pages.
        """
        canvas = _FlatCanvas(self.width, self._buf)
        clickmap = ClickMap()
        elements = page.elements
        limit = self.max_height
        i, n = 0, len(elements)
        while i < n and (limit is None or canvas.y < limit):
            self._render_element(canvas, elements[i], clickmap)
            i += 1
        total = canvas.y
        for el in elements[i:]:
            total += self._measure(el)
        self._buf = canvas._buf  # keep the grown buffer warm
        full_height = total if total > 0 else 1
        if limit is not None and full_height > limit:
            image = canvas.image(limit)
            clickmap = ClickMap(
                [r for r in clickmap if r.y + r.height <= limit]
            )
        else:
            image = canvas.image()
        return RenderResult(image, clickmap, full_height)

    def render_ref(self, page: Page) -> RenderResult:
        """The seed render path, kept as the golden reference.

        Chunk-list canvas, per-character text rendering, no caches, and
        the whole layout rasterised before cropping — the exact code the
        repository started with, which :meth:`render` must reproduce
        byte-for-byte.  Also the honest per-page cost baseline for the
        ``serve_catalog`` bench.
        """
        canvas = _Canvas(self.width)
        clickmap = ClickMap()
        self._ref = True
        try:
            for el in page.elements:
                self._render_element(canvas, el, clickmap)
        finally:
            self._ref = False
        image = canvas.image()
        full_height = image.shape[0]
        if self.max_height is not None and full_height > self.max_height:
            image = image[: self.max_height]
            clickmap = ClickMap(
                [r for r in clickmap if r.y + r.height <= self.max_height]
            )
        return RenderResult(image, clickmap, full_height)
