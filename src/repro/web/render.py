"""Render a :class:`repro.web.dom.Page` to an RGB screenshot + click map.

Mirrors the paper's rendering parameters: images are 1,080 pixels wide
and optionally cropped at a maximum pixel height (PH, 10k in the paper)
"to allow a user to scroll down ... while avoiding to waste broadcasted
data" (Section 3.2).  The renderer also emits the click map used for
interactivity, and both scale together by the device scaling factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import derive_rng
from repro.web import font
from repro.web.clickmap import ClickMap, ClickRegion
from repro.web.dom import (
    AdBanner,
    Divider,
    Footer,
    Header,
    Heading,
    ImageBlock,
    LinkGrid,
    LinkList,
    Page,
    Paragraph,
    SearchBox,
    Thumbnail,
)

__all__ = ["PageRenderer", "RenderResult"]

_WHITE = (255, 255, 255)
_TEXT = (75, 75, 75)
_LINK = (18, 60, 160)
_RULE = (210, 210, 210)

_HEADING_SCALE = {1: 4, 2: 3, 3: 2}
_BODY_SCALE = 2
_MARGIN = 36
_LINE_GAP = 16


@dataclass
class RenderResult:
    """A rendered screenshot and its interactivity map."""

    image: np.ndarray  # (H, W, 3) uint8
    clickmap: ClickMap
    full_height: int  # layout height before any PH crop

    @property
    def cropped(self) -> bool:
        return self.image.shape[0] < self.full_height

    def scaled(self, factor: float) -> "RenderResult":
        """Resize image and click map by the device scaling factor.

        Nearest-neighbour resampling — the cheap operation a low-end
        phone can afford (paper Section 3.2).
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        h, w = self.image.shape[:2]
        new_h, new_w = max(1, int(h * factor)), max(1, int(w * factor))
        rows = np.minimum((np.arange(new_h) / factor).astype(np.int64), h - 1)
        cols = np.minimum((np.arange(new_w) / factor).astype(np.int64), w - 1)
        image = self.image[rows][:, cols]
        return RenderResult(image, self.clickmap.scaled(factor), int(self.full_height * factor))


class _Canvas:
    """Grow-down drawing surface with rectangle/text primitives."""

    def __init__(self, width: int) -> None:
        self.width = width
        self._chunks: list[np.ndarray] = []
        self.y = 0

    def extend(self, height: int, color=_WHITE) -> int:
        """Append ``height`` rows of ``color``; returns their start y."""
        block = np.empty((height, self.width, 3), dtype=np.uint8)
        block[:] = color
        self._chunks.append(block)
        start = self.y
        self.y += height
        return start

    def _locate(self, y: int) -> tuple[np.ndarray, int]:
        offset = 0
        for chunk in self._chunks:
            if y < offset + chunk.shape[0]:
                return chunk, y - offset
            offset += chunk.shape[0]
        raise IndexError(f"row {y} beyond canvas height {self.y}")

    def fill_rect(self, x: int, y: int, w: int, h: int, color) -> None:
        remaining = h
        row = y
        while remaining > 0:
            chunk, local = self._locate(row)
            span = min(remaining, chunk.shape[0] - local)
            chunk[local : local + span, x : x + w] = color
            row += span
            remaining -= span

    def blit_mask(self, x: int, y: int, mask: np.ndarray, color) -> None:
        remaining = mask.shape[0]
        src = 0
        row = y
        while remaining > 0:
            chunk, local = self._locate(row)
            span = min(remaining, chunk.shape[0] - local)
            w = min(mask.shape[1], self.width - x)
            region = chunk[local : local + span, x : x + w]
            region[mask[src : src + span, :w]] = color
            row += span
            src += span
            remaining -= span

    def paste(self, x: int, y: int, tile: np.ndarray) -> None:
        remaining = tile.shape[0]
        src = 0
        row = y
        while remaining > 0:
            chunk, local = self._locate(row)
            span = min(remaining, chunk.shape[0] - local)
            w = min(tile.shape[1], self.width - x)
            chunk[local : local + span, x : x + w] = tile[src : src + span, :w]
            row += span
            src += span
            remaining -= span

    def image(self) -> np.ndarray:
        if not self._chunks:
            return np.full((1, self.width, 3), 255, dtype=np.uint8)
        return np.concatenate(self._chunks, axis=0)


def _procedural_photo(width: int, height: int, seed: int) -> np.ndarray:
    """A deterministic photo-like texture: gradient + soft blobs."""
    rng = derive_rng(seed, "photo")
    yy, xx = np.mgrid[0:height, 0:width]
    base = np.zeros((height, width, 3), dtype=np.float64)
    c0 = rng.uniform(40, 215, 3)
    c1 = rng.uniform(40, 215, 3)
    t = (xx + yy) / max(width + height - 2, 1)
    for ch in range(3):
        base[..., ch] = c0[ch] + (c1[ch] - c0[ch]) * t
    for _ in range(6):
        cx, cy = rng.uniform(0, width), rng.uniform(0, height)
        radius = rng.uniform(0.1, 0.35) * min(width, height)
        color = rng.uniform(0, 255, 3)
        blob = np.exp(-(((xx - cx) ** 2 + (yy - cy) ** 2) / (2 * radius**2)))
        for ch in range(3):
            base[..., ch] += (color[ch] - base[..., ch]) * blob * 0.7
    return np.clip(base, 0, 255).astype(np.uint8)


class PageRenderer:
    """Layout engine: stacks page elements into a screenshot."""

    def __init__(self, width: int = 1080, max_height: int | None = 10_000) -> None:
        if width < 200:
            raise ValueError("width must be at least 200 px")
        self.width = width
        self.max_height = max_height

    # -- text helpers ----------------------------------------------------------

    #: Body text occupies a reading column, not the full viewport —
    #: mobile pages keep measure around 60 characters.
    TEXT_COLUMN_FRACTION = 0.72

    def _wrap(self, text: str, scale: int) -> list[str]:
        usable = int((self.width - 2 * _MARGIN) * self.TEXT_COLUMN_FRACTION)
        per_char = (font.GLYPH_WIDTH + 1) * scale
        max_chars = max(8, usable // per_char)
        words = text.split()
        lines: list[str] = []
        current = ""
        for word in words:
            candidate = f"{current} {word}".strip()
            if len(candidate) <= max_chars:
                current = candidate
            else:
                if current:
                    lines.append(current)
                current = word[:max_chars]
        if current:
            lines.append(current)
        return lines or [""]

    def _draw_text_block(
        self, canvas: _Canvas, text: str, scale: int, color, x: int | None = None
    ) -> tuple[int, int, int]:
        """Draw wrapped text; returns (y, height, max_line_width)."""
        lines = self._wrap(text, scale)
        line_h = font.GLYPH_HEIGHT * scale + _LINE_GAP
        y0 = canvas.extend(line_h * len(lines) + _LINE_GAP)
        max_w = 0
        for i, line in enumerate(lines):
            mask = font.render_text(line, scale=scale)
            canvas.blit_mask(x if x is not None else _MARGIN, y0 + i * line_h, mask, color)
            max_w = max(max_w, mask.shape[1])
        return y0, line_h * len(lines) + _LINE_GAP, max_w

    # -- element renderers ----------------------------------------------------------

    def _render_header(self, canvas: _Canvas, el: Header, clickmap: ClickMap) -> None:
        bar_h = 96
        y0 = canvas.extend(bar_h, el.color)
        title_mask = font.render_text(el.title, scale=4)
        canvas.blit_mask(_MARGIN, y0 + 16, title_mask, _WHITE)
        x = _MARGIN
        nav_y = y0 + 64
        for label, href in el.nav_items:
            mask = font.render_text(label, scale=2)
            w = mask.shape[1]
            if x + w > self.width - _MARGIN:
                break
            canvas.blit_mask(x, nav_y, mask, (220, 230, 255))
            clickmap.add(ClickRegion(x, nav_y, w, mask.shape[0], href))
            x += w + 28

    def _render_heading(self, canvas: _Canvas, el: Heading, clickmap: ClickMap) -> None:
        scale = _HEADING_SCALE.get(el.level, 2)
        color = _LINK if el.href else _TEXT
        y0, h, w = self._draw_text_block(canvas, el.text, scale, color)
        if el.href:
            clickmap.add(ClickRegion(_MARGIN, y0, w, h - _LINE_GAP, el.href))

    def _render_paragraph(self, canvas: _Canvas, el: Paragraph) -> None:
        self._draw_text_block(canvas, el.text, _BODY_SCALE, _TEXT)
        canvas.extend(30)

    def _render_image(self, canvas: _Canvas, el: ImageBlock) -> None:
        w = min(el.width, self.width - 2 * _MARGIN)
        y0 = canvas.extend(el.height + 12)
        canvas.paste(_MARGIN, y0, _procedural_photo(w, el.height, el.seed))
        if el.caption:
            self._draw_text_block(canvas, el.caption, 1, (90, 90, 90))

    def _render_thumbnail(self, canvas: _Canvas, el: Thumbnail) -> None:
        w = min(el.width, self.width - 2 * _MARGIN)
        y0 = canvas.extend(el.height + 8)
        canvas.paste(_MARGIN, y0, _procedural_photo(w, el.height, el.seed))
        # Play-button glyph: centred grey box with a triangle.
        size = min(60, el.height - 8)
        bx = _MARGIN + w // 2 - size // 2
        by = y0 + el.height // 2 - size // 2
        canvas.fill_rect(bx, by, size, size, (60, 60, 60))
        tri = np.zeros((size, size), dtype=bool)
        for row in range(size):
            extent = size // 2 - abs(row - size // 2)
            tri[row, size // 3 : size // 3 + max(0, extent)] = True
        canvas.blit_mask(bx, by, tri, _WHITE)
        self._draw_text_block(canvas, el.label, 1, (120, 120, 120))

    def _render_linklist(self, canvas: _Canvas, el: LinkList, clickmap: ClickMap) -> None:
        for label, href in el.items:
            y0, h, w = self._draw_text_block(canvas, "- " + label, _BODY_SCALE, _LINK)
            clickmap.add(ClickRegion(_MARGIN, y0, w, h - _LINE_GAP, href))
        canvas.extend(8)

    def _render_linkgrid(self, canvas: _Canvas, el: LinkGrid, clickmap: ClickMap) -> None:
        # Dense directory wall: small type, tight leading, full width.
        col_w = (self.width - 2 * _MARGIN) // el.columns
        row_h = font.GLYPH_HEIGHT * 2 + 4
        n_rows = -(-len(el.items) // el.columns)
        y0 = canvas.extend(n_rows * row_h + 8)
        per_char = (font.GLYPH_WIDTH + 1) * 2
        max_chars = max(4, (col_w - 8) // per_char)
        for i, (label, href) in enumerate(el.items):
            row, col = divmod(i, el.columns)
            x = _MARGIN + col * col_w
            y = y0 + row * row_h
            mask = font.render_text(label[:max_chars], scale=2)
            canvas.blit_mask(x, y, mask, _LINK)
            clickmap.add(ClickRegion(x, y, mask.shape[1], mask.shape[0], href))

    def _render_searchbox(self, canvas: _Canvas, el: SearchBox, clickmap: ClickMap) -> None:
        box_h = 44
        y0 = canvas.extend(box_h + 12)
        w = self.width - 2 * _MARGIN
        canvas.fill_rect(_MARGIN, y0, w, box_h, (240, 240, 240))
        canvas.fill_rect(_MARGIN, y0, w, 2, _RULE)
        canvas.fill_rect(_MARGIN, y0 + box_h - 2, w, 2, _RULE)
        mask = font.render_text(el.placeholder, scale=2)
        canvas.blit_mask(_MARGIN + 12, y0 + 12, mask, (130, 130, 130))
        clickmap.add(ClickRegion(_MARGIN, y0, w, box_h, el.href))

    def _render_ad(self, canvas: _Canvas, el: AdBanner, clickmap: ClickMap) -> None:
        banner_h = 90
        y0 = canvas.extend(banner_h + 10)
        w = self.width - 2 * _MARGIN
        canvas.fill_rect(_MARGIN, y0, w, banner_h, el.color)
        mask = font.render_text(el.text, scale=3)
        canvas.blit_mask(_MARGIN + 20, y0 + 30, mask, _WHITE)
        if el.href:
            clickmap.add(ClickRegion(_MARGIN, y0, w, banner_h, el.href))

    def _render_footer(self, canvas: _Canvas, el: Footer, clickmap: ClickMap) -> None:
        foot_h = 80
        y0 = canvas.extend(foot_h, el.color)
        x = _MARGIN
        for label, href in el.items:
            mask = font.render_text(label, scale=1)
            w = mask.shape[1]
            if x + w > self.width - _MARGIN:
                break
            canvas.blit_mask(x, y0 + 34, mask, (200, 200, 200))
            clickmap.add(ClickRegion(x, y0 + 34, w, mask.shape[0], href))
            x += w + 24

    # -- entry point ----------------------------------------------------------

    def render(self, page: Page) -> RenderResult:
        """Lay out and rasterise ``page``; crop at ``max_height`` if set."""
        canvas = _Canvas(self.width)
        clickmap = ClickMap()
        for el in page.elements:
            if isinstance(el, Header):
                self._render_header(canvas, el, clickmap)
            elif isinstance(el, Heading):
                self._render_heading(canvas, el, clickmap)
            elif isinstance(el, Paragraph):
                self._render_paragraph(canvas, el)
            elif isinstance(el, ImageBlock):
                self._render_image(canvas, el)
            elif isinstance(el, Thumbnail):
                self._render_thumbnail(canvas, el)
            elif isinstance(el, LinkList):
                self._render_linklist(canvas, el, clickmap)
            elif isinstance(el, LinkGrid):
                self._render_linkgrid(canvas, el, clickmap)
            elif isinstance(el, SearchBox):
                self._render_searchbox(canvas, el, clickmap)
            elif isinstance(el, AdBanner):
                self._render_ad(canvas, el, clickmap)
            elif isinstance(el, Divider):
                y0 = canvas.extend(el.padding * 2 + 2)
                canvas.fill_rect(_MARGIN, y0 + el.padding, self.width - 2 * _MARGIN, 2, _RULE)
            elif isinstance(el, Footer):
                self._render_footer(canvas, el, clickmap)
            else:
                raise TypeError(f"unknown element type {type(el).__name__}")

        image = canvas.image()
        full_height = image.shape[0]
        if self.max_height is not None and full_height > self.max_height:
            image = image[: self.max_height]
            clickmap = ClickMap(
                [r for r in clickmap if r.y + r.height <= self.max_height]
            )
        return RenderResult(image, clickmap, full_height)
