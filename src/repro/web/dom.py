"""A simplified page model ("DOM") for the renderer.

SONIC transmits page *appearance*, so this model only carries what shows
on screen: block-level elements stacked vertically, plus the hyperlink
targets needed to build click maps.  It deliberately has no scripting,
styling cascade, or video (the paper's Content Limitations section:
videos appear as non-clickable thumbnails).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Page",
    "Header",
    "Heading",
    "Paragraph",
    "ImageBlock",
    "LinkList",
    "Thumbnail",
    "SearchBox",
    "AdBanner",
    "Divider",
    "Footer",
]


@dataclass(frozen=True)
class Header:
    """Top banner: site title plus a navigation bar of links."""

    title: str
    nav_items: tuple[tuple[str, str], ...] = ()  # (label, href)
    color: tuple[int, int, int] = (28, 60, 120)


@dataclass(frozen=True)
class Heading:
    """Section heading; optionally a hyperlink (e.g. article titles)."""

    text: str
    level: int = 1  # 1 (largest) .. 3
    href: str | None = None


@dataclass(frozen=True)
class Paragraph:
    """Body text, wrapped by the renderer."""

    text: str


@dataclass(frozen=True)
class ImageBlock:
    """An inline photo/figure, drawn as a procedural texture."""

    width: int
    height: int
    seed: int
    caption: str = ""


@dataclass(frozen=True)
class LinkList:
    """A bulleted list of hyperlinks (e.g. 'more stories')."""

    items: tuple[tuple[str, str], ...]  # (label, href)


@dataclass(frozen=True)
class LinkGrid:
    """A dense multi-column directory of links (urdupoint-style walls).

    These pages are the heavy tail of the size CDF: small type, tight
    leading, ink across the full width.
    """

    items: tuple[tuple[str, str], ...]  # (label, href)
    columns: int = 3


@dataclass(frozen=True)
class Thumbnail:
    """A video placeholder: image + play glyph, *not* clickable."""

    width: int
    height: int
    seed: int
    label: str = "video unavailable over SONIC"


@dataclass(frozen=True)
class SearchBox:
    """A search field; clicking it requires an uplink."""

    placeholder: str = "Search"
    href: str = "action:search"


@dataclass(frozen=True)
class AdBanner:
    """A display ad slot (the radio-station monetisation surface)."""

    text: str
    href: str | None = None
    color: tuple[int, int, int] = (200, 120, 20)


@dataclass(frozen=True)
class Divider:
    """A horizontal rule with vertical padding."""

    padding: int = 26


@dataclass(frozen=True)
class Footer:
    """Bottom matter: contact/about links."""

    items: tuple[tuple[str, str], ...] = ()
    color: tuple[int, int, int] = (40, 40, 40)


Element = (
    Header
    | Heading
    | Paragraph
    | ImageBlock
    | LinkList
    | LinkGrid
    | Thumbnail
    | SearchBox
    | AdBanner
    | Divider
    | Footer
)


@dataclass
class Page:
    """A renderable page: URL, title, and a vertical stack of elements."""

    url: str
    title: str
    elements: list[Element] = field(default_factory=list)

    def internal_links(self) -> list[str]:
        """Every hyperlink target reachable from this page."""
        links: list[str] = []
        for el in self.elements:
            if isinstance(el, Header):
                links.extend(href for _, href in el.nav_items)
            elif isinstance(el, Heading) and el.href:
                links.append(el.href)
            elif isinstance(el, (LinkList, LinkGrid)):
                links.extend(href for _, href in el.items)
            elif isinstance(el, (SearchBox,)):
                links.append(el.href)
            elif isinstance(el, AdBanner) and el.href:
                links.append(el.href)
            elif isinstance(el, Footer):
                links.extend(href for _, href in el.items)
        return links
