"""Click maps: interactivity for static screenshots.

Adopted from DRIVESHAFT (paper Section 3.2): a list of <x, y> rectangles
mapping screenshot regions to hyperlink targets.  When a SONIC user taps
inside a region, the client either loads the target from its cache or
requests it over SMS.  Click maps are scaled together with the image by
the device scaling factor, and serialise compactly for broadcast
alongside the page.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = ["ClickRegion", "ClickMap"]


@dataclass(frozen=True)
class ClickRegion:
    """One interactive rectangle (pixel coordinates, top-left origin)."""

    x: int
    y: int
    width: int
    height: int
    href: str

    def contains(self, x: int, y: int) -> bool:
        return self.x <= x < self.x + self.width and self.y <= y < self.y + self.height

    def scaled(self, factor: float) -> "ClickRegion":
        return ClickRegion(
            int(round(self.x * factor)),
            int(round(self.y * factor)),
            max(1, int(round(self.width * factor))),
            max(1, int(round(self.height * factor))),
            self.href,
        )


class ClickMap:
    """An ordered collection of clickable regions for one screenshot."""

    def __init__(self, regions: list[ClickRegion] | None = None) -> None:
        self.regions: list[ClickRegion] = list(regions or [])

    def add(self, region: ClickRegion) -> None:
        self.regions.append(region)

    def __len__(self) -> int:
        return len(self.regions)

    def __iter__(self):
        return iter(self.regions)

    def hit_test(self, x: int, y: int) -> str | None:
        """The href under (x, y), topmost (last-added) region first."""
        for region in reversed(self.regions):
            if region.contains(x, y):
                return region.href
        return None

    def scaled(self, factor: float) -> "ClickMap":
        """Scale every region by the device scaling factor (Section 3.2)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return ClickMap([r.scaled(factor) for r in self.regions])

    def hrefs(self) -> list[str]:
        return [r.href for r in self.regions]

    # -- wire format ----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise: count + per-region packed rect + length-prefixed href."""
        out = bytearray(struct.pack(">H", len(self.regions)))
        for r in self.regions:
            href = r.href.encode("utf-8")
            if len(href) > 255:
                raise ValueError(f"href too long to serialise: {r.href!r}")
            out += struct.pack(">HHHHB", r.x, r.y, r.width, r.height, len(href))
            out += href
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ClickMap":
        """Inverse of :meth:`to_bytes`; raises ``ValueError`` on damage."""
        try:
            (count,) = struct.unpack_from(">H", data, 0)
            offset = 2
            regions = []
            for _ in range(count):
                x, y, w, h, hlen = struct.unpack_from(">HHHHB", data, offset)
                offset += 9
                if offset + hlen > len(data):
                    raise ValueError("truncated click map")
                href = data[offset : offset + hlen].decode("utf-8")
                offset += hlen
                regions.append(ClickRegion(x, y, w, h, href))
        except (struct.error, UnicodeDecodeError) as exc:
            raise ValueError(f"malformed click map: {exc}") from exc
        return cls(regions)
