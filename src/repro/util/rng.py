"""Deterministic random-stream derivation.

Experiments in this repository must be reproducible run-to-run, yet the
subsystems (channel noise, workload churn, rater sampling, ...) must not
share one global stream — otherwise adding a draw in one module silently
reshuffles every other result.  ``derive_rng`` gives each (seed, label)
pair its own independent ``numpy`` generator.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_rng"]


def derive_rng(seed: int, *labels: str | int) -> np.random.Generator:
    """Return a generator keyed by ``seed`` and a path of ``labels``.

    The same (seed, labels) pair always yields an identical stream; any
    change to either yields a statistically independent one.

    >>> a = derive_rng(7, "channel", 3)
    >>> b = derive_rng(7, "channel", 3)
    >>> float(a.random()) == float(b.random())
    True
    """
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode())
    material = int.from_bytes(digest.digest()[:8], "big")
    return np.random.default_rng(np.random.SeedSequence([seed & 0xFFFFFFFF, material]))
