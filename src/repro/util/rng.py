"""Deterministic random-stream derivation.

Experiments in this repository must be reproducible run-to-run, yet the
subsystems (channel noise, workload churn, rater sampling, ...) must not
share one global stream — otherwise adding a draw in one module silently
reshuffles every other result.  ``derive_rng`` gives each (seed, label)
pair its own independent ``numpy`` generator.

For population-scale simulation a sequential generator is not enough:
the million-receiver fleet needs draw ``j`` of receiver ``i`` to be a
*pure function* of ``(seed, labels, i, j)``, so that serial, chunked,
and multiprocess sweeps produce bit-identical results regardless of how
the population is partitioned.  ``counter_uniforms``/``counter_normals``
provide that: a Philox-style counter construction (here the splitmix64
mixing function, whose finalizer is a full-avalanche 64-bit hash) that
maps a key plus an absolute counter straight to a variate, vectorised
over numpy arrays of counters.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "derive_rng",
    "derive_key",
    "counter_uniforms",
    "counter_normals",
]


def derive_key(seed: int, *labels: str | int) -> int:
    """64-bit stream key for ``(seed, labels)``.

    Uses the same SHA-256 path derivation as :func:`derive_rng`, so keys
    inherit its independence guarantees: any change to the seed or to
    any label yields an unrelated key.
    """
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode())
    return int.from_bytes(digest.digest()[:8], "big")


def derive_rng(seed: int, *labels: str | int) -> np.random.Generator:
    """Return a generator keyed by ``seed`` and a path of ``labels``.

    The same (seed, labels) pair always yields an identical stream; any
    change to either yields a statistically independent one.

    >>> a = derive_rng(7, "channel", 3)
    >>> b = derive_rng(7, "channel", 3)
    >>> float(a.random()) == float(b.random())
    True
    """
    material = derive_key(seed, *labels)
    return np.random.default_rng(np.random.SeedSequence([seed & 0xFFFFFFFF, material]))


_MASK64 = 0xFFFFFFFFFFFFFFFF
#: splitmix64 constants (Steele, Lea & Flood; passes BigCrush).
_SM64_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM64_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_MIX2 = np.uint64(0x94D049BB133111EB)


def counter_uniforms(key: int, counters: np.ndarray) -> np.ndarray:
    """Uniform [0, 1) variates as a pure function of ``(key, counter)``.

    ``counters`` may be any integer array (absolute draw indices); the
    result has the same shape.  Because each variate depends only on the
    key and its own counter, any partitioning of the counter space —
    chunked, reordered, or spread across processes — reproduces the
    exact same values:

    >>> key = derive_key(0, "demo")
    >>> all_at_once = counter_uniforms(key, np.arange(10))
    >>> chunked = np.concatenate(
    ...     [counter_uniforms(key, np.arange(0, 5)),
    ...      counter_uniforms(key, np.arange(5, 10))])
    >>> bool(np.array_equal(all_at_once, chunked))
    True
    """
    c = np.asarray(counters, dtype=np.uint64)
    k = np.uint64(int(key) & _MASK64)
    with np.errstate(over="ignore"):
        # splitmix64 evaluated at state = key + counter * gamma: the
        # counter walks the generator's state sequence and the finalizer
        # below is its full-avalanche output hash.
        x = k + c * _SM64_GAMMA
        x = (x ^ (x >> np.uint64(30))) * _SM64_MIX1
        x = (x ^ (x >> np.uint64(27))) * _SM64_MIX2
        x = x ^ (x >> np.uint64(31))
    # Top 53 bits -> float64 mantissa, exactly like numpy's own doubles.
    return (x >> np.uint64(11)).astype(np.float64) * (1.0 / (1 << 53))


#: Acklam's rational approximation of the inverse normal CDF
#: (relative error < 1.15e-9 over the full open interval).
_ACKLAM_A = (
    -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
    1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
)
_ACKLAM_B = (
    -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
    6.680131188771972e01, -1.328068155288572e01,
)
_ACKLAM_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
    -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
)
_ACKLAM_D = (
    7.784695709041462e-03, 3.224671290700398e-01,
    2.445134137142996e00, 3.754408661907416e00,
)
_ACKLAM_SPLIT = 0.02425


def _inverse_normal_cdf(p: np.ndarray) -> np.ndarray:
    """Vectorised Phi^-1(p) with no scipy dependency (Acklam 2003)."""
    p = np.asarray(p, dtype=np.float64)
    out = np.empty_like(p)
    lo = p < _ACKLAM_SPLIT
    hi = p > 1.0 - _ACKLAM_SPLIT
    mid = ~(lo | hi)

    a, b, c, d = _ACKLAM_A, _ACKLAM_B, _ACKLAM_C, _ACKLAM_D
    if np.any(mid):
        q = p[mid] - 0.5
        r = q * q
        num = ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
        den = ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        out[mid] = q * num / den
    if np.any(lo):
        q = np.sqrt(-2.0 * np.log(p[lo]))
        num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        out[lo] = num / den
    if np.any(hi):
        q = np.sqrt(-2.0 * np.log(1.0 - p[hi]))
        num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        out[hi] = -num / den
    return out


def counter_normals(key: int, counters: np.ndarray) -> np.ndarray:
    """Standard-normal variates as a pure function of ``(key, counter)``.

    Inverse-CDF transform of :func:`counter_uniforms`, so it inherits
    the same partition-invariance.  The uniform is nudged off 0 to keep
    the transform finite.
    """
    u = counter_uniforms(key, counters)
    tiny = 1.0 / (1 << 53)
    return _inverse_normal_cdf(np.maximum(u, tiny))
