"""Shared low-level plumbing: bit packing and deterministic RNG streams."""

from repro.util.bits import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    int_to_bits,
    pad_bits,
)
from repro.util.rng import derive_rng

__all__ = [
    "bits_to_bytes",
    "bits_to_int",
    "bytes_to_bits",
    "int_to_bits",
    "pad_bits",
    "derive_rng",
]
