"""Bit/byte conversion helpers.

All bit vectors in this codebase are 1-D ``numpy.uint8`` arrays holding the
values 0 and 1, MSB-first within each byte.  Centralising the conversions
here keeps the modem, FEC, and framing layers agreed on bit order.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bytes_to_bits", "bits_to_bytes", "int_to_bits", "bits_to_int", "pad_bits"]


def bytes_to_bits(data: bytes | bytearray | np.ndarray) -> np.ndarray:
    """Expand bytes into an MSB-first bit vector.

    >>> bytes_to_bits(b"\\x80").tolist()
    [1, 0, 0, 0, 0, 0, 0, 0]
    """
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr)


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack an MSB-first bit vector back into bytes.

    The bit count must be a multiple of 8; use :func:`pad_bits` first when
    dealing with ragged payloads.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1:
        raise ValueError(f"expected 1-D bit vector, got shape {bits.shape}")
    if bits.size % 8 != 0:
        raise ValueError(f"bit count {bits.size} is not a multiple of 8")
    return np.packbits(bits).tobytes()


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Encode ``value`` as a fixed-width MSB-first bit vector.

    >>> int_to_bits(5, 4).tolist()
    [0, 1, 0, 1]
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)], dtype=np.uint8)


def bits_to_int(bits: np.ndarray) -> int:
    """Decode an MSB-first bit vector into a non-negative integer."""
    value = 0
    for b in np.asarray(bits, dtype=np.uint8):
        value = (value << 1) | int(b)
    return value


def pad_bits(bits: np.ndarray, multiple: int, value: int = 0) -> np.ndarray:
    """Right-pad a bit vector with ``value`` up to a multiple of ``multiple``."""
    bits = np.asarray(bits, dtype=np.uint8)
    remainder = bits.size % multiple
    if remainder == 0:
        return bits
    pad = np.full(multiple - remainder, value, dtype=np.uint8)
    return np.concatenate([bits, pad])
