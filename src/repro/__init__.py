"""SONIC reproduction: connect the unconnected via FM radio & SMS.

A full-system Python reproduction of the CoNEXT 2024 paper: an acoustic
OFDM modem (the Quiet-library equivalent), the FM broadcast chain, a
WebP-class image codec, webpage rendering with click maps, the SMS
uplink, and the SONIC server/client — plus simulation substrates that
regenerate every figure in the paper's evaluation.

Quick start::

    from repro import Modem, SonicSystem

    modem = Modem()                      # the paper's ~10 kbps OFDM profile
    audio = modem.transmit_frame(bytes(100))
    [frame] = modem.receive(audio)
    assert frame.ok

    system = SonicSystem()               # server + FM + SMS + users A/B/C
    system.client("user-c").request_page(
        system.generator.all_urls()[0], now=system.clock.now
    )
    system.run(seconds=120)
"""

from repro.core.config import SystemConfig
from repro.core.pipeline import simulate_column_loss
from repro.core.system import SonicSystem
from repro.client.client import ClientProfile, SonicClient
from repro.imaging.codec import SWebpCodec
from repro.modem.modem import Modem
from repro.modem.profiles import get_profile, list_profiles
from repro.radio.channels import AcousticChannel, FmRadioLink
from repro.server.server import SonicServer
from repro.web.render import PageRenderer
from repro.web.sites import SiteGenerator

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "SonicSystem",
    "SonicServer",
    "SonicClient",
    "ClientProfile",
    "Modem",
    "get_profile",
    "list_profiles",
    "SWebpCodec",
    "AcousticChannel",
    "FmRadioLink",
    "PageRenderer",
    "SiteGenerator",
    "simulate_column_loss",
    "__version__",
]
