"""Catalog announcements: the broadcast programme guide.

A downlink-only SONIC user can browse only what has already arrived —
but to "show a catalog of available webpages" (Section 3.1) before
everything lands, the transmitter periodically broadcasts a lightweight
announcement of what is queued: URL, page id, content version, size, and
the transmitter's ETA.  Clients ingest these METADATA frames to show an
"upcoming" view and to decide whether an SMS request is worth its cost.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.transport.framing import (
    Frame,
    FrameHeader,
    FrameType,
    PAYLOAD_SIZE,
)

__all__ = ["CatalogEntryInfo", "CatalogAnnouncement"]

_MAGIC = b"SNCT"
#: page id reserved for catalog traffic.
CATALOG_PAGE_ID = 0xFFFF


@dataclass(frozen=True)
class CatalogEntryInfo:
    """One queued page, as announced over the air."""

    url: str
    page_id: int
    version: int
    size_bytes: int
    eta_seconds: float

    def __post_init__(self) -> None:
        if len(self.url.encode("utf-8")) > 255:
            raise ValueError("URL too long for a catalog entry")


@dataclass
class CatalogAnnouncement:
    """The transmitter's current queue, broadcast as METADATA frames."""

    station_id: str
    entries: list[CatalogEntryInfo]

    def to_bytes(self) -> bytes:
        station = self.station_id.encode("utf-8")
        if len(station) > 255:
            raise ValueError("station id too long")
        out = bytearray(_MAGIC)
        out.append(len(station))
        out += station
        out += struct.pack(">H", len(self.entries))
        for entry in self.entries:
            url = entry.url.encode("utf-8")
            out += struct.pack(
                ">BHHIf",
                len(url),
                entry.page_id,
                entry.version,
                entry.size_bytes,
                entry.eta_seconds,
            )
            out += url
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "CatalogAnnouncement":
        if data[:4] != _MAGIC:
            raise ValueError("bad catalog magic")
        try:
            pos = 4
            station_len = data[pos]
            pos += 1
            station = data[pos : pos + station_len].decode("utf-8")
            pos += station_len
            (count,) = struct.unpack_from(">H", data, pos)
            pos += 2
            entries = []
            for _ in range(count):
                url_len, page_id, version, size, eta = struct.unpack_from(
                    ">BHHIf", data, pos
                )
                pos += struct.calcsize(">BHHIf")
                if pos + url_len > len(data):
                    raise ValueError("truncated catalog entry")
                url = data[pos : pos + url_len].decode("utf-8")
                pos += url_len
                entries.append(
                    CatalogEntryInfo(url, page_id, version, size, eta)
                )
        except (IndexError, struct.error, UnicodeDecodeError) as exc:
            raise ValueError(f"malformed catalog announcement: {exc}") from exc
        return cls(station, entries)

    # -- framing ------------------------------------------------------------

    def to_frames(self) -> list[Frame]:
        """Chunk the announcement into METADATA frames."""
        data = self.to_bytes()
        total = max(1, -(-len(data) // PAYLOAD_SIZE))
        frames = []
        for seq in range(total):
            chunk = data[seq * PAYLOAD_SIZE : (seq + 1) * PAYLOAD_SIZE]
            frames.append(
                Frame(
                    FrameHeader(
                        FrameType.METADATA,
                        CATALOG_PAGE_ID,
                        seq,
                        total,
                        n_pixels=len(chunk),
                    ),
                    chunk,
                )
            )
        return frames

    @classmethod
    def from_frames(cls, frames: list[Frame]) -> "CatalogAnnouncement | None":
        """Reassemble from METADATA frames; None while incomplete."""
        by_seq = {
            f.header.seq: f
            for f in frames
            if f.header.frame_type == FrameType.METADATA
        }
        if not by_seq:
            return None
        total = next(iter(by_seq.values())).header.total
        if len(by_seq) < total:
            return None
        data = b"".join(
            by_seq[seq].payload[: by_seq[seq].header.n_pixels]
            for seq in range(total)
        )
        return cls.from_bytes(data)
