"""Unequal error protection for column transport.

Paper, Section 4: "each portion of an image is transmitted equally; one
optimization consists of adopting a dynamic scheme with higher error
protection for important parts of an image/webpage."  This module
implements that optimisation: frames covering *important* pixels — the
above-the-fold region and dense text rows — are repeated within the
transmission schedule, so a random frame loss is far less likely to wipe
out a headline than a footer.

Repetition is the right primitive at this layer (the per-frame FEC is
fixed by the modem profile); duplicates are free at the receiver because
:class:`repro.transport.assemble.ColumnAssembler` is idempotent per
sequence number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.transport.framing import Frame

__all__ = ["UepPolicy", "schedule_with_uep"]


@dataclass(frozen=True)
class UepPolicy:
    """What counts as important, and how much extra airtime it gets."""

    fold_rows: int = 1_200  # above-the-fold region (device-height-ish)
    text_luma_threshold: float = 128.0  # dark pixels = text strokes
    text_row_fraction: float = 0.02  # rows this inky count as text
    repeats: int = 2  # copies of important frames (1 = off)

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")


def important_rows(image: np.ndarray, policy: UepPolicy) -> np.ndarray:
    """Boolean mask over rows: above the fold, or carrying text ink."""
    image = np.asarray(image)
    luma = image.mean(axis=-1) if image.ndim == 3 else image.astype(np.float64)
    inky = (luma < policy.text_luma_threshold).mean(axis=1)
    mask = inky > policy.text_row_fraction
    mask[: min(policy.fold_rows, mask.size)] = True
    return mask


def schedule_with_uep(
    frames: list[Frame], image: np.ndarray, policy: UepPolicy = UepPolicy()
) -> list[Frame]:
    """Build the transmission schedule: every frame once, important
    frames ``policy.repeats`` times, extra copies appended at the end
    (so a clean receiver finishes as early as without UEP)."""
    if policy.repeats == 1:
        return list(frames)
    rows = important_rows(image, policy)
    schedule = list(frames)
    for _ in range(policy.repeats - 1):
        for frame in frames:
            hd = frame.header
            span = rows[hd.row0 : hd.row0 + max(hd.n_pixels, 1)]
            if span.size and span.any():
                schedule.append(frame)
    return schedule


def importance_weighted_damage(
    image: np.ndarray, missing: np.ndarray, policy: UepPolicy = UepPolicy()
) -> float:
    """Fraction of *important* pixels lost — the metric UEP optimises."""
    rows = important_rows(image, policy)
    if not rows.any():
        return 0.0
    return float(missing[rows].mean())
