"""Transport layer: images <-> 100-byte broadcast frames.

The paper describes two things at once (Section 3.3): airtime accounting
is done on *WebP bytes* (Figures 4(b) and 4(c)), while loss visualisation
maps lost frames to *pixel columns* (Figures 1 and 5: the image is split
into 1-pixel-wide vertical partitions, and each partition into 100-byte
frames).  These are not the same encoding, so this package implements
both consistent transports:

* :class:`ColumnTransport` — the paper's literal partitioning: 1-px
  column segments, independently decodable per frame, so every lost
  frame blanks a known pixel run that nearest-neighbour interpolation
  can repair.  Used by the FIG1/FIG5 experiments.
* :class:`BundleTransport` — chunks an opaque byte payload (the SWebp
  file + click map) into sequence-numbered frames; a broadcast carousel
  retransmits until every receiver fills its gaps.  Its frame counts are
  what the FIG4B/FIG4C airtime math uses.
"""

from repro.transport.framing import Frame, FrameHeader, FRAME_SIZE, FrameType
from repro.transport.partition import ColumnTransport
from repro.transport.bundle import BundleTransport, PageBundle
from repro.transport.assemble import ColumnAssembler, ReceivedImage
from repro.transport.carousel import BroadcastCarousel, CarouselItem

__all__ = [
    "Frame",
    "FrameHeader",
    "FRAME_SIZE",
    "FrameType",
    "ColumnTransport",
    "BundleTransport",
    "PageBundle",
    "ColumnAssembler",
    "ReceivedImage",
    "BroadcastCarousel",
    "CarouselItem",
]
