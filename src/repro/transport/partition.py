"""Column partitioning: the paper's literal image transport.

"We first divide the image vertically into multiple partitions, each
with a width of 1 pixel.  Each partition is then divided into fixed-sized
frames of 100 bytes each.  Each frame carries a partition and a sequence
number used to reassemble the image on the receiver end." (Section 3.3)

Two payload modes:

* ``raw`` — the literal reading: fixed pixel count per frame (27 RGB
  pixels in the 81-byte payload).  Loss maps exactly to fixed-height
  column segments; this is the geometry behind Figures 1 and 5.
* ``rle`` — run-length coded pixel runs, each frame an *independently
  decodable* unit covering a variable row range.  Roughly an order of
  magnitude fewer frames on rendered pages while preserving the same
  lost-frame -> missing-column-segment behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.transport.framing import (
    FRAME_SIZE,
    Frame,
    FrameHeader,
    FrameType,
    PAYLOAD_SIZE,
)

__all__ = ["ColumnTransport"]

_RUN = 0x01
_LIT = 0x02
_RAW_PIXELS_PER_FRAME = PAYLOAD_SIZE // 3  # 27 RGB pixels


class ColumnTransport:
    """Split an RGB image into column frames and reassemble subsets."""

    def __init__(self, mode: str = "raw") -> None:
        if mode not in ("raw", "rle"):
            raise ValueError("mode must be 'raw' or 'rle'")
        self.mode = mode

    # -- encoding ------------------------------------------------------------

    def partition(self, image: np.ndarray, page_id: int = 0) -> list[Frame]:
        """Encode a (H, W, 3) uint8 image into 100-byte frames."""
        image = np.asarray(image)
        if image.ndim != 3 or image.shape[2] != 3 or image.dtype != np.uint8:
            raise ValueError("expected (H, W, 3) uint8 image")
        if self.mode == "raw":
            descriptors = self._raw_descriptors(image.shape[0], image.shape[1])
            frames = []
            total = len(descriptors)
            for seq, (col, row0, n) in enumerate(descriptors):
                payload = image[row0 : row0 + n, col].tobytes()
                frames.append(
                    Frame(
                        FrameHeader(
                            FrameType.COLUMN_PIXELS, page_id, seq, total, col, row0, n
                        ),
                        payload,
                    )
                )
            return frames
        return self._partition_rle(image, page_id)

    def frame_regions(
        self, image_shape: tuple[int, int], image: np.ndarray | None = None
    ) -> list[tuple[int, int, int]]:
        """The (col, row0, n_pixels) footprint of every frame, in order.

        For ``raw`` mode this is a pure function of the image shape —
        the fast path the synthetic-loss experiments use.  ``rle`` mode
        needs the pixels themselves.
        """
        h, w = image_shape
        if self.mode == "raw":
            return self._raw_descriptors(h, w)
        if image is None:
            raise ValueError("rle mode needs the image to compute regions")
        return [
            (f.header.col, f.header.row0, f.header.n_pixels)
            for f in self.partition(image)
        ]

    @staticmethod
    def _raw_descriptors(h: int, w: int) -> list[tuple[int, int, int]]:
        per_col = -(-h // _RAW_PIXELS_PER_FRAME)
        out = []
        for col in range(w):
            for k in range(per_col):
                row0 = k * _RAW_PIXELS_PER_FRAME
                out.append((col, row0, min(_RAW_PIXELS_PER_FRAME, h - row0)))
        return out

    # -- RLE mode ------------------------------------------------------------

    def _partition_rle(self, image: np.ndarray, page_id: int) -> list[Frame]:
        h, w = image.shape[:2]
        pending: list[tuple[int, int, int, bytes]] = []  # col, row0, n, payload
        for col in range(w):
            column = image[:, col, :]
            # Run boundaries on the packed 24-bit colour value.
            packed = (
                column[:, 0].astype(np.int64) << 16
                | column[:, 1].astype(np.int64) << 8
                | column[:, 2].astype(np.int64)
            )
            boundaries = np.nonzero(np.diff(packed))[0] + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.concatenate([boundaries, [h]])
            pending.extend(self._pack_column(col, starts, ends, column))
        total = len(pending)
        return [
            Frame(
                FrameHeader(
                    FrameType.COLUMN_PIXELS, page_id, seq, total, col, row0, n
                ),
                payload,
            )
            for seq, (col, row0, n, payload) in enumerate(pending)
        ]

    @staticmethod
    def _pack_column(col, starts, ends, column) -> list[tuple[int, int, int, bytes]]:
        """Greedily pack one column's runs into frame-sized payloads."""
        frames: list[tuple[int, int, int, bytes]] = []
        buf = bytearray()
        frame_row0 = int(starts[0]) if starts.size else 0
        covered = 0

        def flush() -> None:
            nonlocal buf, frame_row0, covered
            if buf:
                frames.append((col, frame_row0, covered, bytes(buf)))
            buf = bytearray()
            covered = 0

        for s, e in zip(starts, ends):
            row = int(s)
            remaining = int(e - s)
            color = column[row].tobytes()
            while remaining > 0:
                chunk = min(remaining, 65_535)
                token = bytes([_RUN]) + chunk.to_bytes(2, "big") + color
                if len(buf) + len(token) > PAYLOAD_SIZE:
                    flush()
                    frame_row0 = row
                buf += token
                covered += chunk
                row += chunk
                remaining -= chunk
        flush()
        return frames

    # -- decoding ------------------------------------------------------------

    def reassemble(
        self,
        frames: list[Frame],
        image_shape: tuple[int, int],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Rebuild (image, missing_mask) from a subset of frames.

        Pixels not covered by any received frame are left black and
        flagged in the returned boolean mask — the raw material for
        :func:`repro.imaging.interpolate.interpolate_missing`.
        """
        h, w = image_shape
        image = np.zeros((h, w, 3), dtype=np.uint8)
        missing = np.ones((h, w), dtype=bool)
        for frame in frames:
            hd = frame.header
            if hd.frame_type != FrameType.COLUMN_PIXELS:
                continue
            if not 0 <= hd.col < w:
                raise ValueError(f"frame column {hd.col} outside width {w}")
            if self.mode == "raw":
                n = hd.n_pixels
                pixels = np.frombuffer(frame.payload[: n * 3], dtype=np.uint8)
                image[hd.row0 : hd.row0 + n, hd.col] = pixels.reshape(n, 3)
                missing[hd.row0 : hd.row0 + n, hd.col] = False
            else:
                self._decode_rle_frame(frame, image, missing)
        return image, missing

    @staticmethod
    def _decode_rle_frame(frame: Frame, image: np.ndarray, missing: np.ndarray) -> None:
        hd = frame.header
        row = hd.row0
        data = frame.payload
        pos = 0
        drawn = 0
        while drawn < hd.n_pixels and pos < len(data):
            token = data[pos]
            if token == _RUN:
                count = int.from_bytes(data[pos + 1 : pos + 3], "big")
                color = np.frombuffer(data[pos + 3 : pos + 6], dtype=np.uint8)
                pos += 6
            else:
                raise ValueError(f"unknown RLE token {token}")
            end = min(row + count, image.shape[0])
            image[row:end, hd.col] = color
            missing[row:end, hd.col] = False
            row = end
            drawn += count
