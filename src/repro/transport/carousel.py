"""Broadcast carousel: what the FM transmitter actually sends, in order.

The SONIC server enqueues pages (user requests first, then the popular
pages it pushes preemptively); the transmitter drains the queue at the
channel rate.  Figure 4(c) is exactly this queue's backlog over time, so
the carousel exposes byte-accurate accounting: ``enqueue`` on content
change, ``drain(seconds)`` per simulation step, ``backlog_bytes`` as the
plotted quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.transport.framing import FRAME_SIZE, Frame

__all__ = ["CarouselItem", "BroadcastCarousel"]


@dataclass
class CarouselItem:
    """One queued page transmission."""

    url: str
    size_bytes: int
    priority: float = 0.0  # higher drains first; requests outrank pushes
    enqueued_at: float = 0.0  # simulation time, seconds
    frames: list[Frame] | None = None  # present in frame-level simulations
    digest: str | None = None  # payload content digest (broadcast cache key)
    sent_bytes: int = 0
    frames_sent: int = 0

    @property
    def remaining_bytes(self) -> int:
        return max(0, self.size_bytes - self.sent_bytes)

    @property
    def airtime_frames(self) -> int:
        """100-byte frames this item occupies on air."""
        return -(-self.size_bytes // FRAME_SIZE)


class BroadcastCarousel:
    """Priority-ordered transmission queue with byte-rate draining."""

    def __init__(self, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = rate_bps
        self._queue: list[CarouselItem] = []
        self._backlog = 0  # unsent bytes, kept in lockstep with _queue
        self.total_sent_bytes = 0
        self.completed: list[tuple[str, float]] = []  # (url, completion time)
        self._now = 0.0

    # -- queue management ------------------------------------------------------------

    def enqueue(self, item: CarouselItem) -> None:
        """Queue a page; a newer version of the same URL replaces the old.

        Replacement models the server behaviour in Section 3.1: there is
        no point broadcasting a stale screenshot once a fresh render of
        the same page exists.  A *repeat* request for the byte-identical
        version (two users asking for the same page) must not restart
        the transmission — it only raises the queue priority.
        """
        existing = next((q for q in self._queue if q.url == item.url), None)
        if existing is not None and self._same_version(existing, item):
            existing.priority = max(existing.priority, item.priority)
            self._queue.sort(key=lambda q: (-q.priority, q.enqueued_at))
            return
        item.enqueued_at = self._now
        if existing is not None:
            self._backlog -= existing.remaining_bytes
            self._queue = [q for q in self._queue if q.url != item.url]
        self._backlog += item.remaining_bytes
        self._queue.append(item)
        self._queue.sort(key=lambda q: (-q.priority, q.enqueued_at))

    @staticmethod
    def _same_version(a: CarouselItem, b: CarouselItem) -> bool:
        """Two queued items carry the identical render of a page."""
        if a.digest is not None and b.digest is not None:
            # Content digests (from the broadcast encode cache) settle
            # identity exactly, without touching the frame lists.
            return a.digest == b.digest
        if a.size_bytes != b.size_bytes:
            return False
        if a.frames is None or b.frames is None:
            return a.frames is b.frames
        if len(a.frames) != len(b.frames):
            return False
        # Bundle frames carry the content version in the col field.
        return a.frames[0].header.col == b.frames[0].header.col

    def backlog_bytes(self) -> int:
        """Unsent bytes across the queue — Figure 4(c)'s y-axis.

        Maintained incrementally (enqueue/drain/emit update it in place)
        so the request front end can consult it per batch at O(1).
        """
        return self._backlog

    def queue_length(self) -> int:
        return len(self._queue)

    def head(self) -> CarouselItem | None:
        return self._queue[0] if self._queue else None

    # -- time advancement ------------------------------------------------------------

    def drain(self, seconds: float) -> list[str]:
        """Advance time, sending at the configured rate.

        Returns the URLs whose transmission completed in this step.
        """
        if seconds < 0:
            raise ValueError("cannot drain negative time")
        budget = int(seconds * self.rate_bps / 8)
        finished: list[str] = []
        while budget > 0 and self._queue:
            item = self._queue[0]
            take = min(budget, item.remaining_bytes)
            item.sent_bytes += take
            budget -= take
            self.total_sent_bytes += take
            self._backlog -= take
            if item.remaining_bytes == 0:
                finished.append(item.url)
                self.completed.append((item.url, self._now + seconds))
                self._queue.pop(0)
        self._now += seconds
        return finished

    def advance_time(self, seconds: float) -> None:
        """Advance the carousel clock without draining any bytes.

        The streaming transmitter drains via :meth:`emit_frames` as the
        modem consumes payloads; this keeps completion timestamps and
        ``enqueued_at`` ordering consistent with the audio clock.
        """
        if seconds < 0:
            raise ValueError("cannot advance negative time")
        self._now += seconds

    def eta_seconds(self, url: str) -> float | None:
        """Estimated completion time for a queued URL.

        This is what the server quotes back to a requesting user via SMS
        (Section 3.1).  None when the URL is not queued.
        """
        ahead = 0
        for item in self._queue:
            ahead += item.remaining_bytes
            if item.url == url:
                return ahead * 8 / self.rate_bps
        return None

    # -- frame-level emission (end-to-end simulations) -------------------------

    def emit_frames(self, max_frames: int) -> Iterator[tuple[str, Frame]]:
        """Yield up to ``max_frames`` (url, frame) pairs from the queue head.

        Only items that carry actual frames participate; accounting stays
        consistent with :meth:`drain`.
        """
        emitted = 0
        while emitted < max_frames and self._queue:
            item = self._queue[0]
            if item.frames is None:
                raise ValueError(f"item {item.url} has no frame payloads")
            if item.frames_sent >= len(item.frames):
                self._backlog -= item.remaining_bytes
                self.completed.append((item.url, self._now))
                self._queue.pop(0)
                continue
            yield item.url, item.frames[item.frames_sent]
            item.frames_sent += 1
            # Keep the byte accounting (backlog, ETAs) consistent with
            # the frame progress.
            sent_before = item.sent_bytes
            item.sent_bytes = min(
                item.size_bytes,
                int(item.size_bytes * item.frames_sent / len(item.frames)),
            )
            self._backlog -= item.sent_bytes - sent_before
            self.total_sent_bytes += FRAME_SIZE
            emitted += 1
            if item.frames_sent >= len(item.frames):
                self._backlog -= item.remaining_bytes
                item.sent_bytes = item.size_bytes
                self.completed.append((item.url, self._now))
                self._queue.pop(0)
