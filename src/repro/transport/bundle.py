"""Bundle transport: compressed pages as chunked byte payloads.

This is the transport whose byte counts the paper's airtime math uses
(Figures 4(b)/(c)): the SWebp-compressed screenshot plus its click map
and metadata travel as an opaque bundle, chunked into 100-byte frames.
A bundle only opens once every chunk is present; the broadcast carousel
repeats bundles so receivers fill their gaps on later cycles.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.imaging.codec import SWebpCodec
from repro.transport.framing import (
    Frame,
    FrameHeader,
    FrameType,
    PAYLOAD_SIZE,
)
from repro.web.clickmap import ClickMap

__all__ = ["PageBundle", "BundleTransport"]

_BUNDLE_MAGIC = b"SNBD"


@dataclass
class PageBundle:
    """Everything a client needs to show and interact with one page."""

    url: str
    image: np.ndarray  # (H, W, 3) uint8 screenshot
    clickmap: ClickMap
    expiry_hours: float = 24.0  # cache lifetime dictated by the server
    quality: int = 10

    def to_bytes(self) -> bytes:
        """Serialise: header + click map + SWebp image."""
        codec = SWebpCodec(self.quality)
        image_bytes = codec.encode(self.image)
        click_bytes = self.clickmap.to_bytes()
        url_bytes = self.url.encode("utf-8")
        if len(url_bytes) > 65_535:
            raise ValueError("URL too long")
        head = _BUNDLE_MAGIC + struct.pack(
            ">HfII", len(url_bytes), self.expiry_hours, len(click_bytes), len(image_bytes)
        )
        return head + url_bytes + click_bytes + image_bytes

    @classmethod
    def from_bytes(cls, data: bytes) -> "PageBundle":
        """Parse and decode a serialised bundle.

        Raises ``ValueError`` for structural damage and
        :class:`repro.imaging.codec.CodecError` for image damage.
        """
        if data[:4] != _BUNDLE_MAGIC:
            raise ValueError("bad bundle magic")
        try:
            url_len, expiry, click_len, image_len = struct.unpack_from(
                ">HfII", data, 4
            )
        except struct.error as exc:
            raise ValueError("truncated bundle header") from exc
        pos = 4 + struct.calcsize(">HfII")
        if pos + url_len + click_len + image_len > len(data):
            raise ValueError("truncated bundle body")
        try:
            url = data[pos : pos + url_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ValueError("malformed bundle URL") from exc
        pos += url_len
        clickmap = ClickMap.from_bytes(data[pos : pos + click_len])
        pos += click_len
        image_bytes = data[pos : pos + image_len]
        image = SWebpCodec().decode(image_bytes)
        quality = image_bytes[10]
        return cls(url, image, clickmap, expiry_hours=expiry, quality=quality)


class BundleTransport:
    """Chunk opaque byte blobs into frames and reassemble them."""

    def chunk(self, data: bytes, page_id: int = 0, version: int = 0) -> list[Frame]:
        """Split ``data`` into BUNDLE_BYTES frames.

        ``version`` distinguishes successive renders of the same page: a
        receiver must never mix chunks of different versions, since both
        travel under the same page id.  (It rides in the otherwise-unused
        ``col`` header field.)
        """
        total = max(1, -(-len(data) // PAYLOAD_SIZE))
        frames = []
        for seq in range(total):
            chunk = data[seq * PAYLOAD_SIZE : (seq + 1) * PAYLOAD_SIZE]
            frames.append(
                Frame(
                    FrameHeader(
                        FrameType.BUNDLE_BYTES,
                        page_id,
                        seq,
                        total,
                        col=version & 0xFFFF,
                        n_pixels=len(chunk),
                    ),
                    chunk,
                )
            )
        return frames

    def frames_needed(self, data_len: int) -> int:
        """Frame count for a payload of ``data_len`` bytes."""
        return max(1, -(-data_len // PAYLOAD_SIZE))

    def reassemble(self, frames: list[Frame]) -> bytes | None:
        """Rebuild the byte blob; None while any chunk is missing."""
        if not frames:
            return None
        total = frames[0].header.total
        by_seq: dict[int, Frame] = {}
        for frame in frames:
            if frame.header.frame_type != FrameType.BUNDLE_BYTES:
                continue
            if frame.header.total != total:
                raise ValueError("inconsistent totals in bundle frames")
            by_seq[frame.header.seq] = frame
        if len(by_seq) < total:
            return None
        parts = []
        for seq in range(total):
            frame = by_seq[seq]
            parts.append(frame.payload[: frame.header.n_pixels])
        return b"".join(parts)
