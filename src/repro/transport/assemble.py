"""Receiver-side image assembly and loss recovery.

Collects column frames per page, tracks coverage, and produces the final
image: lost pixels are either shown dark (what Figure 1-centre shows) or
repaired with nearest-neighbour interpolation (Figure 1-right).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.imaging.interpolate import interpolate_missing
from repro.transport.framing import Frame, FrameType
from repro.transport.partition import ColumnTransport

__all__ = ["ReceivedImage", "ColumnAssembler"]


@dataclass
class ReceivedImage:
    """Assembly outcome for one page."""

    image: np.ndarray  # with missing pixels black
    missing: np.ndarray  # boolean (H, W)
    frames_received: int
    frames_total: int

    @property
    def frame_loss_rate(self) -> float:
        """Fraction of this page's frames that never arrived."""
        if self.frames_total == 0:
            return 1.0
        return 1.0 - self.frames_received / self.frames_total

    @property
    def pixel_loss_rate(self) -> float:
        """Fraction of pixels with no received data."""
        return float(np.mean(self.missing))

    def interpolated(self) -> np.ndarray:
        """The image after the paper's nearest-neighbour recovery."""
        return interpolate_missing(self.image, self.missing)


class ColumnAssembler:
    """Accumulates frames (possibly across carousel cycles) per page."""

    def __init__(self, image_shape: tuple[int, int], mode: str = "raw") -> None:
        self.image_shape = image_shape
        self._transport = ColumnTransport(mode)
        self._frames: dict[int, Frame] = {}
        self._total: int | None = None

    def add_frame(self, frame: Frame) -> None:
        """Ingest one received frame (duplicates are idempotent)."""
        if frame.header.frame_type != FrameType.COLUMN_PIXELS:
            raise ValueError("assembler only accepts column frames")
        if self._total is None:
            self._total = frame.header.total
        elif frame.header.total != self._total:
            raise ValueError("inconsistent frame totals for this page")
        self._frames[frame.header.seq] = frame

    def add_frames(self, frames: list[Frame]) -> None:
        for frame in frames:
            self.add_frame(frame)

    @property
    def complete(self) -> bool:
        return self._total is not None and len(self._frames) == self._total

    @property
    def coverage(self) -> float:
        if self._total in (None, 0):
            return 0.0
        return len(self._frames) / self._total

    def result(self) -> ReceivedImage:
        """Assemble with whatever has arrived so far."""
        image, missing = self._transport.reassemble(
            list(self._frames.values()), self.image_shape
        )
        return ReceivedImage(
            image,
            missing,
            frames_received=len(self._frames),
            frames_total=self._total or 0,
        )
