"""Fixed 100-byte frame format.

Every SONIC transmission unit is exactly 100 bytes (paper Section 3.3),
self-describing enough that a receiver can reassemble an image from any
subset: page id, sequence number, total count, and — for column frames —
the pixel region the payload covers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum

__all__ = ["FRAME_SIZE", "FrameType", "FrameHeader", "Frame"]

FRAME_SIZE = 100
_HEADER_FMT = ">BHIIHHH"  # type, page_id, seq, total, col, row0, n_pixels
HEADER_SIZE = struct.calcsize(_HEADER_FMT)
PAYLOAD_SIZE = FRAME_SIZE - HEADER_SIZE


class FrameType(IntEnum):
    """What a frame's payload contains."""

    COLUMN_PIXELS = 1  # RLE pixel run for a 1-px column segment
    BUNDLE_BYTES = 2  # chunk of an opaque byte bundle
    METADATA = 3  # page metadata (dimensions, URL, expiry)


@dataclass(frozen=True)
class FrameHeader:
    """Frame addressing and pixel-region information."""

    frame_type: FrameType
    page_id: int
    seq: int
    total: int
    col: int = 0  # column index (COLUMN_PIXELS only)
    row0: int = 0  # first row covered (COLUMN_PIXELS only)
    n_pixels: int = 0  # rows covered (COLUMN_PIXELS only)

    def __post_init__(self) -> None:
        if not 0 <= self.page_id < 1 << 16:
            raise ValueError("page_id must fit in 16 bits")
        if not 0 <= self.seq < self.total <= 1 << 32 - 1:
            raise ValueError(f"bad seq/total: {self.seq}/{self.total}")


@dataclass(frozen=True)
class Frame:
    """One 100-byte transmission unit."""

    header: FrameHeader
    payload: bytes

    def to_bytes(self) -> bytes:
        """Serialise to exactly FRAME_SIZE bytes (payload zero-padded)."""
        if len(self.payload) > PAYLOAD_SIZE:
            raise ValueError(
                f"payload of {len(self.payload)} exceeds {PAYLOAD_SIZE} bytes"
            )
        h = self.header
        head = struct.pack(
            _HEADER_FMT,
            int(h.frame_type),
            h.page_id,
            h.seq,
            h.total,
            h.col,
            h.row0,
            h.n_pixels,
        )
        return head + self.payload + bytes(PAYLOAD_SIZE - len(self.payload))

    @classmethod
    def from_bytes(cls, data: bytes) -> "Frame":
        """Parse a FRAME_SIZE byte buffer back into a frame."""
        if len(data) != FRAME_SIZE:
            raise ValueError(f"expected {FRAME_SIZE} bytes, got {len(data)}")
        ftype, page_id, seq, total, col, row0, n_pixels = struct.unpack_from(
            _HEADER_FMT, data
        )
        header = FrameHeader(
            FrameType(ftype), page_id, seq, total, col, row0, n_pixels
        )
        return cls(header, data[HEADER_SIZE:])
