"""FIR filtering and rational resampling.

The FM multiplex assembles and disassembles its subcarriers with linear-
phase FIR filters so that group delay is a known constant that the
receiver chain can compensate exactly.
"""

from __future__ import annotations

import numpy as np
from scipy import signal

__all__ = ["fir_lowpass", "fir_bandpass", "filter_signal", "resample"]


def fir_lowpass(cutoff_hz: float, sample_rate: float, num_taps: int = 127) -> np.ndarray:
    """Design a linear-phase FIR low-pass filter (Hamming window)."""
    if not 0 < cutoff_hz < sample_rate / 2:
        raise ValueError(
            f"cutoff {cutoff_hz} Hz outside (0, {sample_rate / 2}) Hz"
        )
    if num_taps % 2 == 0:
        raise ValueError("num_taps must be odd for integer group delay")
    return signal.firwin(num_taps, cutoff_hz, fs=sample_rate)


def fir_bandpass(
    low_hz: float, high_hz: float, sample_rate: float, num_taps: int = 255
) -> np.ndarray:
    """Design a linear-phase FIR band-pass filter."""
    if not 0 < low_hz < high_hz < sample_rate / 2:
        raise ValueError(
            f"band [{low_hz}, {high_hz}] Hz invalid for fs={sample_rate}"
        )
    if num_taps % 2 == 0:
        raise ValueError("num_taps must be odd for integer group delay")
    return signal.firwin(num_taps, [low_hz, high_hz], fs=sample_rate, pass_zero=False)


def filter_signal(taps: np.ndarray, x: np.ndarray, compensate_delay: bool = True) -> np.ndarray:
    """Apply an FIR filter, optionally removing its group delay.

    With ``compensate_delay`` the output is time-aligned with the input
    and has the same length, which keeps sample indices meaningful across
    the whole transmit/receive chain.
    """
    taps = np.asarray(taps, dtype=np.float64)
    y = signal.fftconvolve(x, taps, mode="full")
    if not compensate_delay:
        return y[: x.size]
    delay = (taps.size - 1) // 2
    return y[delay : delay + x.size]


def resample(x: np.ndarray, up: int, down: int) -> np.ndarray:
    """Rational-ratio polyphase resampling (anti-aliased)."""
    if up < 1 or down < 1:
        raise ValueError("up and down factors must be >= 1")
    if up == down:
        return np.asarray(x, dtype=np.float64).copy()
    return signal.resample_poly(x, up, down)
