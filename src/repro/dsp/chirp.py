"""Linear chirps and matched filtering.

The modem marks the start of every physical frame with a linear chirp:
its autocorrelation is sharply peaked and resilient to both narrowband
interference and the frequency-selective colouring of the FM audio path,
which makes it a robust timing reference.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as sp_fft
from scipy import signal

__all__ = [
    "linear_chirp",
    "matched_filter_peak",
    "StreamingCorrelator",
    "StreamingPeakDetector",
]


def linear_chirp(
    f0_hz: float,
    f1_hz: float,
    duration_s: float,
    sample_rate: float,
    amplitude: float = 1.0,
) -> np.ndarray:
    """Generate a linear frequency sweep with raised-cosine edge tapers.

    The 5 % tapers avoid spectral splatter into the neighbouring FM
    multiplex subcarriers when the chirp starts and stops.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    n = int(round(duration_s * sample_rate))
    t = np.arange(n) / sample_rate
    sweep = signal.chirp(t, f0=f0_hz, f1=f1_hz, t1=duration_s, method="linear")
    taper_len = max(1, n // 20)
    window = np.ones(n)
    edge = 0.5 * (1 - np.cos(np.pi * np.arange(taper_len) / taper_len))
    window[:taper_len] = edge
    window[-taper_len:] = edge[::-1]
    return (amplitude * sweep * window).astype(np.float64)


class StreamingCorrelator:
    """Chunk-fed normalised matched filter with chunk-invariant output.

    Correlation scores are computed in fixed blocks anchored at absolute
    sample positions (``block = 16 * template_len`` score positions per
    block), so every score's float value depends only on the capture
    content — pushing the capture one sample at a time and pushing it as
    a single array produce bit-identical scores.  The local-energy
    normalisation uses a running cumulative sum carried across blocks by
    sequential accumulation, exactly what one whole-array ``np.cumsum``
    would compute.

    Full blocks all share one FFT length, so the template's transform is
    computed once here and reused every block — the overlap-save loop
    then costs one forward and one inverse FFT per block, numerically
    identical to per-block :func:`scipy.signal.fftconvolve` calls.
    """

    def __init__(self, template: np.ndarray) -> None:
        template = np.asarray(template, dtype=np.float64)
        if template.size == 0:
            raise ValueError("template must not be empty")
        self.template_len = template.size
        self.block = 16 * template.size
        self._template_rev = template[::-1].copy()
        self._template_energy = float(np.sum(template * template))
        # fftconvolve's transform length for a full block + the cached
        # template spectrum at that length (fftconvolve recomputes it
        # per call — the dominant cost of block-wise scoring).
        seg_len = self.block + self.template_len - 1
        self._fshape = sp_fft.next_fast_len(seg_len + self.template_len - 1, True)
        self._template_rfft = sp_fft.rfft(self._template_rev, self._fshape)
        self._pending = np.zeros(0)  # samples not yet fully scored
        self._csum_carry = 0.0  # exact x*x prefix sum at the block base
        self._last_csum: np.ndarray | None = None
        self.scored = 0  # absolute count of emitted score positions

    def push(self, chunk: np.ndarray) -> tuple[int, np.ndarray]:
        """Feed samples; returns ``(start_position, scores)`` newly scored."""
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.size:
            self._pending = np.concatenate([self._pending, chunk])
        start = self.scored
        m = self.template_len
        out: list[np.ndarray] = []
        # A full block emits `block` scores from exactly block + m - 1
        # samples; the trailing m - 1 samples overlap the next block.
        while self._pending.size >= self.block + m - 1:
            out.append(self._score_segment(self._pending[: self.block + m - 1]))
            self._advance(self.block)
        return start, (np.concatenate(out) if out else np.zeros(0))

    def flush(self) -> tuple[int, np.ndarray]:
        """Score the final partial block at end of capture."""
        start = self.scored
        if self._pending.size < self.template_len:
            return start, np.zeros(0)
        scores = self._score_segment(self._pending)
        self._advance(scores.size)
        return start, scores

    def _score_segment(self, seg: np.ndarray) -> np.ndarray:
        m = self.template_len
        if seg.size == self.block + m - 1:
            # Full block: same rfft length / product / irfft / centred
            # slice as fftconvolve would use, with the template spectrum
            # taken from the cache — bit-identical output.
            spec = sp_fft.rfft(seg, self._fshape)
            full = sp_fft.irfft(spec * self._template_rfft, self._fshape)
            corr = full[m - 1 : seg.size].copy()
        else:  # final partial block (flush)
            corr = signal.fftconvolve(seg, self._template_rev, mode="valid")
        csum = np.cumsum(np.concatenate([[self._csum_carry], seg * seg]))
        self._last_csum = csum
        local_energy = csum[m:] - csum[:-m]
        denom = np.sqrt(np.maximum(local_energy * self._template_energy, 1e-20))
        return corr / denom

    def _advance(self, n_scores: int) -> None:
        assert self._last_csum is not None
        self._csum_carry = float(self._last_csum[n_scores])
        self._pending = self._pending[n_scores:]
        self.scored += n_scores


class StreamingPeakDetector:
    """Incremental greedy peak selection over a streamed score sequence.

    Greedy strongest-first selection with ``min_separation`` suppression
    decomposes exactly across any run of ``min_separation`` consecutive
    below-threshold scores: a peak selected on one side of such a gap
    cannot suppress a candidate on the other side.  Candidates are
    therefore buffered per *segment* and resolved the moment the stream
    has seen ``min_separation`` below-threshold scores after the
    segment's last candidate — no waiting for end of capture.
    """

    def __init__(self, threshold: float, min_separation: int) -> None:
        if min_separation < 1:
            raise ValueError("min_separation must be >= 1")
        self.threshold = float(threshold)
        self.min_separation = int(min_separation)
        self._segment: list[tuple[int, float]] = []
        self.watermark = 0  # absolute count of scores consumed

    @property
    def pending_min(self) -> int | None:
        """Lowest position that may still become a peak (None: >= watermark)."""
        return self._segment[0][0] if self._segment else None

    def push(self, start: int, scores: np.ndarray) -> list[tuple[int, float]]:
        """Consume scores for positions ``[start, start + len)``; returns
        the peaks finalised by this push, in position order."""
        if start != self.watermark:
            raise ValueError(
                f"scores must be contiguous: expected {self.watermark}, got {start}"
            )
        out: list[tuple[int, float]] = []
        for rel in np.flatnonzero(scores >= self.threshold):
            pos = start + int(rel)
            if self._segment and pos - self._segment[-1][0] > self.min_separation:
                out.extend(self._resolve())
            self._segment.append((pos, float(scores[rel])))
        self.watermark = start + scores.size
        if (
            self._segment
            and self.watermark - 1 - self._segment[-1][0] >= self.min_separation
        ):
            out.extend(self._resolve())
        return out

    def finish(self) -> list[tuple[int, float]]:
        """Resolve the trailing open segment at end of capture."""
        return self._resolve()

    def _resolve(self) -> list[tuple[int, float]]:
        if not self._segment:
            return []
        positions = np.array([p for p, _ in self._segment], dtype=np.int64)
        scores = np.array([s for _, s in self._segment])
        self._segment = []
        base = int(positions[0])
        taken = np.zeros(int(positions[-1]) - base + 1, dtype=bool)
        peaks: list[tuple[int, float]] = []
        # Stable sort reversed: ties resolve to the higher position,
        # deterministically, whatever the segment boundaries were.
        for k in np.argsort(scores, kind="stable")[::-1]:
            idx = int(positions[k]) - base
            if taken[idx]:
                continue
            peaks.append((int(positions[k]), float(scores[k])))
            lo = max(0, idx - self.min_separation)
            hi = min(taken.size, idx + self.min_separation)
            taken[lo:hi] = True
        peaks.sort(key=lambda p: p[0])
        return peaks


def matched_filter_peak(
    x: np.ndarray,
    template: np.ndarray,
    threshold: float = 0.5,
    min_separation: int | None = None,
) -> list[tuple[int, float]]:
    """Locate occurrences of ``template`` in ``x`` by normalised correlation.

    Returns a list of ``(start_index, score)`` pairs with ``score`` in
    [0, 1], strongest non-overlapping peaks first filtered to those above
    ``threshold`` and separated by at least ``min_separation`` samples
    (default: the template length).

    The correlation is normalised by the local signal energy, so the
    detector's operating point does not depend on receive gain.  This is
    the whole-capture wrapper over :class:`StreamingCorrelator` +
    :class:`StreamingPeakDetector` — chunked feeding through those
    classes yields bit-identical peaks.
    """
    x = np.asarray(x, dtype=np.float64)
    template = np.asarray(template, dtype=np.float64)
    if template.size == 0 or x.size < template.size:
        return []
    if min_separation is None:
        min_separation = template.size
    correlator = StreamingCorrelator(template)
    detector = StreamingPeakDetector(threshold, min_separation)
    peaks = detector.push(*correlator.push(x))
    peaks += detector.push(*correlator.flush())
    peaks += detector.finish()
    return peaks
