"""Linear chirps and matched filtering.

The modem marks the start of every physical frame with a linear chirp:
its autocorrelation is sharply peaked and resilient to both narrowband
interference and the frequency-selective colouring of the FM audio path,
which makes it a robust timing reference.
"""

from __future__ import annotations

import numpy as np
from scipy import signal

__all__ = ["linear_chirp", "matched_filter_peak"]


def linear_chirp(
    f0_hz: float,
    f1_hz: float,
    duration_s: float,
    sample_rate: float,
    amplitude: float = 1.0,
) -> np.ndarray:
    """Generate a linear frequency sweep with raised-cosine edge tapers.

    The 5 % tapers avoid spectral splatter into the neighbouring FM
    multiplex subcarriers when the chirp starts and stops.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    n = int(round(duration_s * sample_rate))
    t = np.arange(n) / sample_rate
    sweep = signal.chirp(t, f0=f0_hz, f1=f1_hz, t1=duration_s, method="linear")
    taper_len = max(1, n // 20)
    window = np.ones(n)
    edge = 0.5 * (1 - np.cos(np.pi * np.arange(taper_len) / taper_len))
    window[:taper_len] = edge
    window[-taper_len:] = edge[::-1]
    return (amplitude * sweep * window).astype(np.float64)


def matched_filter_peak(
    x: np.ndarray,
    template: np.ndarray,
    threshold: float = 0.5,
    min_separation: int | None = None,
) -> list[tuple[int, float]]:
    """Locate occurrences of ``template`` in ``x`` by normalised correlation.

    Returns a list of ``(start_index, score)`` pairs with ``score`` in
    [0, 1], strongest non-overlapping peaks first filtered to those above
    ``threshold`` and separated by at least ``min_separation`` samples
    (default: the template length).

    The correlation is normalised by the local signal energy, so the
    detector's operating point does not depend on receive gain.
    """
    x = np.asarray(x, dtype=np.float64)
    template = np.asarray(template, dtype=np.float64)
    if template.size == 0 or x.size < template.size:
        return []
    if min_separation is None:
        min_separation = template.size

    # Overlap-add convolution: chunked FFTs sized to the template keep the
    # cost O(N log M) for minutes-long captures instead of one giant FFT.
    corr = signal.oaconvolve(x, template[::-1], mode="valid")
    # Local energy of x under the template window, via a cumulative sum.
    csum = np.concatenate([[0.0], np.cumsum(x * x)])
    local_energy = csum[template.size :] - csum[: -template.size]
    template_energy = float(np.sum(template * template))
    denom = np.sqrt(np.maximum(local_energy * template_energy, 1e-20))
    score = corr / denom

    # Threshold first, then sort only the (few) candidates — long quiet
    # captures no longer pay an argsort over every sample position.
    candidates = np.flatnonzero(score >= threshold)
    order = candidates[np.argsort(score[candidates])[::-1]]
    peaks: list[tuple[int, float]] = []
    taken = np.zeros(score.size, dtype=bool)
    for idx in order:
        if taken[idx]:
            continue
        peaks.append((int(idx), float(score[idx])))
        lo = max(0, idx - min_separation)
        hi = min(score.size, idx + min_separation)
        taken[lo:hi] = True
    peaks.sort(key=lambda p: p[0])
    return peaks
