"""Signal-processing primitives shared by the modem and radio layers."""

from repro.dsp.filters import (
    fir_bandpass,
    fir_lowpass,
    filter_signal,
    resample,
)
from repro.dsp.chirp import linear_chirp, matched_filter_peak
from repro.dsp.spectrum import band_power_db, power_db, rms
from repro.dsp.wav import read_wav, write_wav

__all__ = [
    "fir_bandpass",
    "fir_lowpass",
    "filter_signal",
    "resample",
    "linear_chirp",
    "matched_filter_peak",
    "band_power_db",
    "power_db",
    "rms",
    "read_wav",
    "write_wav",
]
