"""Power and band-power measurement helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["rms", "power_db", "band_power_db", "snr_db"]


def rms(x: np.ndarray) -> float:
    """Root-mean-square amplitude of a signal."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(x * x)))


def power_db(x: np.ndarray, floor_db: float = -200.0) -> float:
    """Mean signal power in dB (relative to unit power)."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        return floor_db
    p = float(np.mean(x * x))
    if p <= 10 ** (floor_db / 10):
        return floor_db
    return 10.0 * np.log10(p)


def band_power_db(
    x: np.ndarray, sample_rate: float, low_hz: float, high_hz: float
) -> float:
    """Power within a frequency band, in dB, via the periodogram."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0 or not 0 <= low_hz < high_hz <= sample_rate / 2:
        raise ValueError("invalid band or empty signal")
    spectrum = np.fft.rfft(x)
    freqs = np.fft.rfftfreq(x.size, d=1.0 / sample_rate)
    mask = (freqs >= low_hz) & (freqs <= high_hz)
    # Parseval: total power = sum |X|^2 / N^2 (one-sided doubling ignored
    # consistently, so band ratios remain correct).
    p = float(np.sum(np.abs(spectrum[mask]) ** 2) / (x.size**2))
    if p <= 1e-20:
        return -200.0
    return 10.0 * np.log10(p)


def snr_db(signal_power_db: float, noise_power_db: float) -> float:
    """Signal-to-noise ratio from two power measurements in dB."""
    return signal_power_db - noise_power_db
