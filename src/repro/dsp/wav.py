"""16-bit PCM WAV input/output (stdlib-only).

The modem operates on float waveforms in [-1, 1]; these helpers move
them in and out of ordinary mono WAV files so transmissions can actually
be played through a sound card or inspected in an audio editor.
"""

from __future__ import annotations

import wave
from pathlib import Path

import numpy as np

__all__ = ["write_wav", "read_wav"]


def write_wav(path: str | Path, samples: np.ndarray, sample_rate: int = 48_000) -> None:
    """Write a mono float waveform as 16-bit PCM."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1:
        raise ValueError("expected a mono (1-D) waveform")
    peak = float(np.max(np.abs(samples))) if samples.size else 0.0
    if peak > 1.0:
        samples = samples / peak
    pcm = np.clip(np.round(samples * 32_767.0), -32_768, 32_767).astype("<i2")
    with wave.open(str(path), "wb") as f:
        f.setnchannels(1)
        f.setsampwidth(2)
        f.setframerate(int(sample_rate))
        f.writeframes(pcm.tobytes())


def read_wav(path: str | Path) -> tuple[np.ndarray, int]:
    """Read a mono 16-bit PCM WAV into a float waveform in [-1, 1]."""
    with wave.open(str(path), "rb") as f:
        if f.getsampwidth() != 2:
            raise ValueError("only 16-bit PCM WAV is supported")
        n_channels = f.getnchannels()
        rate = f.getframerate()
        raw = f.readframes(f.getnframes())
    pcm = np.frombuffer(raw, dtype="<i2").astype(np.float64)
    if n_channels > 1:
        pcm = pcm.reshape(-1, n_channels).mean(axis=1)
    return pcm / 32_768.0, rate
