"""Simulated time.

All simulation components take explicit ``now`` timestamps (seconds);
``SimClock`` is the single authority that advances them, so experiments
are reproducible and can run days of broadcast schedule in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable
import heapq

__all__ = ["SimClock"]


@dataclass(order=True)
class _Event:
    when: float
    order: int
    action: Callable[[float], None] = field(compare=False)


class SimClock:
    """Event-queue simulation clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._events: list[_Event] = []
        self._counter = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def now_hours(self) -> float:
        return self._now / 3600.0

    def schedule(self, delay_s: float, action: Callable[[float], None]) -> None:
        """Run ``action(now)`` after ``delay_s`` seconds of sim time."""
        if delay_s < 0:
            raise ValueError("cannot schedule in the past")
        self._counter += 1
        heapq.heappush(
            self._events, _Event(self._now + delay_s, self._counter, action)
        )

    def schedule_every(
        self, interval_s: float, action: Callable[[float], None]
    ) -> None:
        """Run ``action`` every ``interval_s``, starting one interval out."""
        if interval_s <= 0:
            raise ValueError("interval must be positive")

        def repeat(now: float) -> None:
            action(now)
            self.schedule(interval_s, repeat)

        self.schedule(interval_s, repeat)

    def advance_to(self, when: float) -> None:
        """Run all events up to ``when`` and move time there."""
        if when < self._now:
            raise ValueError("time cannot go backwards")
        while self._events and self._events[0].when <= when:
            event = heapq.heappop(self._events)
            self._now = event.when
            event.action(self._now)
        self._now = when

    def advance(self, seconds: float) -> None:
        """Advance relative to the current time."""
        self.advance_to(self._now + seconds)
