"""The profile tournament: every modem family across the channel matrix.

Section 2 of the paper picks SONIC's OFDM profile by comparing it against
the simpler data-over-sound designs (GGwave-style FSK, GMSK, AudioQR) on
the axes that matter for an FM deployment: throughput versus how harsh a
channel each survives.  This module runs that comparison as a measured
tournament instead of quoting numbers: each registered profile transmits
the same probe payloads, and every (profile, channel cell) pair in the
matrix — AWGN SNR x acoustic distance x FM RSSI — is decoded through the
real DSP chain.

Cells are expensive (the FM cells run the whole multiplex/modulate/
demodulate chain), so results are memoised in a :class:`SweepStore`
keyed by a digest of the profile, channel parameters and probe waveform
(the same shape as :class:`repro.radio.lossmodel.CalibrationStore`): a
warm store answers a repeat sweep without touching the DSP.  Cell
evaluation fans out over a ``multiprocessing`` pool with the probe
waveforms in shared memory (the fleet-pool pattern), and every cell's
randomness is keyed on ``(master_seed, profile, axis, cell index)`` only
— so serial and pooled runs produce bit-identical results.

The output is the rate-vs-robustness frontier: for each profile, its net
payload rate and the harshest value per channel axis at which measured
loss stays under the threshold.  ``repro tournament`` renders it as JSON
plus an SVG scatter via :mod:`repro.report`.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from collections import Counter
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from repro.radio.channels import AcousticChannel, FmRadioLink
from repro.radio.lossmodel import FrameLossModel, calibration_digest, fit_logistic_fer
from repro.util.rng import derive_rng

__all__ = [
    "TournamentConfig",
    "CellResult",
    "TournamentResult",
    "SweepStore",
    "Contender",
    "run_tournament",
    "write_frontier_report",
]

#: The four modem families the paper compares (Section 2).
DEFAULT_PROFILES = ("sonic-ofdm", "fsk", "gmsk", "audioqr")

AXES = ("awgn", "acoustic", "fm")


@dataclass(frozen=True)
class TournamentConfig:
    """One tournament: who competes, over which channel matrix."""

    profiles: tuple[str, ...] = DEFAULT_PROFILES
    snr_grid_db: tuple[float, ...] = (0.0, 4.0, 8.0, 14.0)
    distance_grid_m: tuple[float, ...] = (0.3, 0.8, 1.3)
    rssi_grid_dbm: tuple[float, ...] = (-70.0, -85.0, -91.0)
    payload_bytes: int = 32  # probe message size for the baseline modems
    n_messages: int = 4  # probe messages (or OFDM frames) per cell
    master_seed: int = 0
    loss_threshold: float = 0.1  # frontier operating point
    store_dir: str | None = None  # persisted SweepStore (None = memo only)

    def __post_init__(self) -> None:
        if not self.profiles:
            raise ValueError("tournament needs at least one profile")
        if self.n_messages < 1:
            raise ValueError("need at least one probe message per cell")
        if not 0 < self.payload_bytes <= 255:
            raise ValueError("payload_bytes must be 1..255 (family modem cap)")

    def axis_grid(self, axis: str) -> tuple[float, ...]:
        return {
            "awgn": self.snr_grid_db,
            "acoustic": self.distance_grid_m,
            "fm": self.rssi_grid_dbm,
        }[axis]


@dataclass(frozen=True)
class CellResult:
    """Measured decode outcome of one (profile, channel cell) pair."""

    profile: str
    axis: str  # "awgn" | "acoustic" | "fm"
    value: float  # SNR dB, distance m, or RSSI dBm
    n_frames: int
    n_lost: int
    cached: bool = False

    @property
    def loss_rate(self) -> float:
        return self.n_lost / self.n_frames if self.n_frames else 1.0


class Contender:
    """Uniform transmit/decode adapter over one registered profile.

    Wraps either the OFDM :class:`~repro.modem.modem.Modem` (framed
    bursts) or one of the message modems (FSK/GMSK/AudioQR) behind the
    same probe interface: a deterministic probe waveform, a recovered-
    message counter, and a net payload rate.
    """

    def __init__(self, profile: str, config: TournamentConfig) -> None:
        self.profile = profile
        self.config = config
        rng = derive_rng(config.master_seed, "tournament-payload", profile)
        if profile in ("fsk", "gmsk", "audioqr"):
            from repro.modem import AudioQrModem, FskModem, GmskModem

            self._modem = {
                "fsk": FskModem,
                "gmsk": GmskModem,
                "audioqr": AudioQrModem,
            }[profile]()
            self._ofdm = None
            size = config.payload_bytes
            self.net_bps = size * 8 / self._modem.transmission_seconds(size)
        else:
            from repro.modem.modem import Modem

            self._ofdm = Modem(profile)
            self._modem = None
            size = self._ofdm.frame_payload_size
            self.net_bps = self._ofdm.profile.net_bit_rate()
        self.payloads = [
            rng.integers(0, 256, size, dtype=np.uint8).tobytes()
            for _ in range(config.n_messages)
        ]
        self.n_frames = config.n_messages
        self._waveform: np.ndarray | None = None
        self._waveform_sha: str | None = None

    @property
    def waveform(self) -> np.ndarray:
        """The probe broadcast (built lazily, deterministic)."""
        if self._waveform is None:
            if self._ofdm is not None:
                wave = self._ofdm.transmit_burst(self.payloads)
                self._waveform = np.concatenate([np.zeros(1500), wave])
            else:
                parts = [np.zeros(1500)]
                for p in self.payloads:
                    parts.append(self._modem.transmit(p))
                    parts.append(np.zeros(2400))
                self._waveform = np.concatenate(parts)
        return self._waveform

    def attach_waveform(self, waveform: np.ndarray) -> None:
        """Adopt a pre-built probe waveform (shared-memory pool path)."""
        self._waveform = waveform

    @property
    def waveform_sha16(self) -> str:
        """Digest of the probe waveform (hashed once, reused per cell)."""
        if self._waveform_sha is None:
            import hashlib

            self._waveform_sha = hashlib.sha256(
                np.ascontiguousarray(self.waveform, dtype=np.float64).tobytes()
            ).hexdigest()[:16]
        return self._waveform_sha

    def recovered(self, audio: np.ndarray) -> int:
        """How many of the probe payloads decode from ``audio``."""
        if self._ofdm is not None:
            frames = self._ofdm.receive(audio, frames_per_burst=self.n_frames)
            decoded = [f.payload for f in frames if f.ok]
        else:
            decoded = self._modem.receive(audio)
        have = Counter(decoded)
        ok = 0
        for p in self.payloads:
            if have[p] > 0:
                have[p] -= 1
                ok += 1
        return ok


def _cell_digest(config: TournamentConfig, contender: Contender,
                 axis: str, value: float) -> str:
    return calibration_digest(
        contender.profile,
        kind="tournament",
        axis=axis,
        value=value,
        n_messages=config.n_messages,
        payload_bytes=config.payload_bytes,
        master_seed=config.master_seed,
        waveform=contender.waveform_sha16,
    )


class SweepStore:
    """Persisted tournament cells keyed by digest.

    The same shape as :class:`repro.radio.lossmodel.CalibrationStore`:
    tiny JSON files under a directory plus an in-process memo; corrupt
    or missing entries just force a re-measure.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._memo: dict[str, tuple[int, int]] = {}

    def _path(self, digest: str) -> Path:
        assert self.directory is not None
        return self.directory / f"sweep-{digest}.json"

    def load(self, digest: str) -> tuple[int, int] | None:
        """Return ``(n_frames, n_lost)`` for ``digest``, or ``None``."""
        counts = self._memo.get(digest)
        if counts is None and self.directory is not None:
            try:
                raw = json.loads(self._path(digest).read_text())
                counts = (int(raw["n_frames"]), int(raw["n_lost"]))
            except (OSError, ValueError, KeyError):
                return None
            self._memo[digest] = counts
        return counts

    def save(self, digest: str, n_frames: int, n_lost: int) -> None:
        self._memo[digest] = (n_frames, n_lost)
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = {"n_frames": int(n_frames), "n_lost": int(n_lost)}
            self._path(digest).write_text(json.dumps(payload, indent=2) + "\n")


def _impair(wave: np.ndarray, axis: str, value: float,
            rng: np.random.Generator) -> np.ndarray:
    """Run the probe through one channel cell (all draws from ``rng``)."""
    if axis == "awgn":
        power = float(np.mean(wave**2)) if wave.size else 0.0
        sigma = float(np.sqrt(power / (10.0 ** (value / 10.0))))
        return wave + rng.normal(0.0, sigma, wave.size)
    seed = int(rng.integers(0, 2**31 - 1))
    if axis == "acoustic":
        return AcousticChannel(seed=seed).transmit(wave, value)
    return FmRadioLink(seed=seed).transmit(wave, value)


def _eval_cell(contender: Contender, config: TournamentConfig,
               axis: str, index: int, value: float) -> tuple[int, int]:
    """Measure one cell; randomness depends only on the cell's identity."""
    rng = derive_rng(
        config.master_seed, "tournament-cell", contender.profile, axis, index
    )
    audio = _impair(contender.waveform, axis, value, rng)
    ok = contender.recovered(audio)
    return contender.n_frames, contender.n_frames - ok


# Pool-worker state: config plus contenders built lazily per profile,
# their waveforms attached from the parent's shared-memory segments.
_worker_config: TournamentConfig | None = None
_worker_waves: dict[str, np.ndarray] = {}
_worker_contenders: dict[str, Contender] = {}
_worker_shms: list[shared_memory.SharedMemory] = []


def _init_tournament_worker(
    config: TournamentConfig, segments: list[tuple[str, str, int]]
) -> None:
    global _worker_config
    _worker_config = config
    _worker_waves.clear()
    _worker_contenders.clear()
    for profile, shm_name, n_samples in segments:
        shm = shared_memory.SharedMemory(name=shm_name)
        _worker_shms.append(shm)
        _worker_waves[profile] = np.ndarray(
            (n_samples,), dtype=np.float64, buffer=shm.buf
        )


def _run_tournament_worker(
    task: tuple[str, str, int, float]
) -> tuple[int, int]:
    profile, axis, index, value = task
    assert _worker_config is not None
    contender = _worker_contenders.get(profile)
    if contender is None:
        contender = Contender(profile, _worker_config)
        contender.attach_waveform(_worker_waves[profile])
        _worker_contenders[profile] = contender
    return _eval_cell(contender, _worker_config, axis, index, value)


@dataclass(frozen=True)
class TournamentResult:
    """Everything :func:`run_tournament` measured (or reloaded)."""

    config: TournamentConfig
    cells: tuple[CellResult, ...]
    net_rates: dict[str, float]
    processes: int
    elapsed_s: float

    @property
    def n_cached(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    def cells_for(self, profile: str, axis: str) -> list[CellResult]:
        return [c for c in self.cells if c.profile == profile and c.axis == axis]

    def loss_models(self) -> dict[str, FrameLossModel]:
        """Per-profile logistic FER curves fitted to the AWGN sweep."""
        models: dict[str, FrameLossModel] = {}
        for profile in self.config.profiles:
            rows = self.cells_for(profile, "awgn")
            mid, scale = fit_logistic_fer(
                [c.value for c in rows],
                [c.n_frames for c in rows],
                [c.n_lost for c in rows],
            )
            models[profile] = FrameLossModel(
                fer_midpoint_db=mid, fer_scale_db=scale
            )
        return models

    def frontier(self) -> list[dict[str, object]]:
        """Rate-vs-robustness operating points, fastest profile first.

        For each profile: its net payload rate plus the harshest value
        per axis (lowest SNR, longest distance, weakest RSSI) at which
        measured loss stayed within ``config.loss_threshold``; ``None``
        where no cell on the axis qualified.
        """
        threshold = self.config.loss_threshold
        rows: list[dict[str, object]] = []
        for profile in self.config.profiles:
            def harshest(axis: str, pick) -> float | None:
                good = [
                    c.value
                    for c in self.cells_for(profile, axis)
                    if c.loss_rate <= threshold
                ]
                return pick(good) if good else None

            rows.append(
                {
                    "profile": profile,
                    "net_bps": self.net_rates[profile],
                    "min_snr_db": harshest("awgn", min),
                    "max_distance_m": harshest("acoustic", max),
                    "min_rssi_dbm": harshest("fm", min),
                }
            )
        rows.sort(key=lambda r: -float(r["net_bps"]))
        return rows

    def to_json(self) -> str:
        payload = {
            "loss_threshold": self.config.loss_threshold,
            "n_messages": self.config.n_messages,
            "payload_bytes": self.config.payload_bytes,
            "master_seed": self.config.master_seed,
            "frontier": self.frontier(),
            "cells": [
                {
                    "profile": c.profile,
                    "axis": c.axis,
                    "value": c.value,
                    "n_frames": c.n_frames,
                    "n_lost": c.n_lost,
                    "loss_rate": c.loss_rate,
                    "cached": c.cached,
                }
                for c in self.cells
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _enumerate_cells(
    config: TournamentConfig,
) -> list[tuple[str, str, int, float]]:
    tasks = []
    for profile in config.profiles:
        for axis in AXES:
            for index, value in enumerate(config.axis_grid(axis)):
                tasks.append((profile, axis, index, float(value)))
    return tasks


def run_tournament(
    config: TournamentConfig = TournamentConfig(),
    processes: int | None = None,
    store: SweepStore | None = None,
) -> TournamentResult:
    """Sweep every profile across the channel matrix.

    ``processes=None`` picks ``min(n_cells, cpu_count)``; ``processes<=1``
    runs serially.  Results are bit-identical either way: each cell's
    randomness is a pure function of its identity.  Cells answered by
    the (memo or on-disk) :class:`SweepStore` skip the DSP entirely.
    """
    t0 = time.perf_counter()
    if store is None:
        store = SweepStore(config.store_dir)
    contenders = {name: Contender(name, config) for name in config.profiles}
    tasks = _enumerate_cells(config)

    digests = {
        task: _cell_digest(config, contenders[task[0]], task[1], task[3])
        for task in tasks
    }
    cached: dict[tuple[str, str, int, float], tuple[int, int]] = {}
    misses: list[tuple[str, str, int, float]] = []
    for task in tasks:
        counts = store.load(digests[task])
        if counts is not None:
            cached[task] = counts
        else:
            misses.append(task)

    if processes is None:
        processes = min(len(misses) or 1, os.cpu_count() or 1)
    processes = max(1, min(int(processes), len(misses) or 1))

    measured: dict[tuple[str, str, int, float], tuple[int, int]] = {}
    if misses and processes == 1:
        for task in misses:
            profile, axis, index, value = task
            measured[task] = _eval_cell(
                contenders[profile], config, axis, index, value
            )
    elif misses:
        needed = sorted({task[0] for task in misses})
        shms: list[shared_memory.SharedMemory] = []
        segments: list[tuple[str, str, int]] = []
        try:
            for profile in needed:
                wave = np.ascontiguousarray(
                    contenders[profile].waveform, dtype=np.float64
                )
                shm = shared_memory.SharedMemory(
                    create=True, size=max(wave.nbytes, 1)
                )
                shms.append(shm)
                view = np.ndarray(wave.shape, dtype=np.float64, buffer=shm.buf)
                view[:] = wave
                segments.append((profile, shm.name, wave.size))
            with multiprocessing.Pool(
                processes,
                initializer=_init_tournament_worker,
                initargs=(config, segments),
            ) as pool:
                for task, counts in zip(
                    misses, pool.map(_run_tournament_worker, misses, chunksize=1)
                ):
                    measured[task] = counts
        finally:
            for shm in shms:
                shm.close()
                shm.unlink()
    for task, counts in measured.items():
        store.save(digests[task], *counts)

    cells = []
    for task in tasks:
        profile, axis, _index, value = task
        n_frames, n_lost = cached.get(task) or measured[task]
        cells.append(
            CellResult(
                profile=profile,
                axis=axis,
                value=value,
                n_frames=n_frames,
                n_lost=n_lost,
                cached=task in cached,
            )
        )
    return TournamentResult(
        config=config,
        cells=tuple(cells),
        net_rates={name: c.net_bps for name, c in contenders.items()},
        processes=processes if misses else 1,
        elapsed_s=time.perf_counter() - t0,
    )


def write_frontier_report(
    result: TournamentResult,
    json_path: str | Path,
    svg_path: str | Path | None = None,
) -> None:
    """Persist the frontier as JSON and (optionally) an SVG scatter."""
    json_path = Path(json_path)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(result.to_json())
    if svg_path is None:
        return
    from repro.report.plots import scatter_chart

    points = {}
    for row in result.frontier():
        if row["min_snr_db"] is None:
            continue  # never met the loss threshold on the AWGN axis
        points[str(row["profile"])] = (
            float(row["min_snr_db"]),
            float(row["net_bps"]) / 1000.0,
        )
    if not points:
        return
    scatter_chart(
        points,
        svg_path,
        title=(
            "Rate vs robustness "
            f"(loss <= {result.config.loss_threshold:g} per axis)"
        ),
        x_label="lowest workable AWGN SNR (dB)",
        y_label="net payload rate (kbps)",
    )
