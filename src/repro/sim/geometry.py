"""Locations and coverage geometry.

Requests carry the user's position so the server can pick the FM
transmitter whose coverage disc contains them (Section 3.1).  A simple
local equirectangular approximation is plenty at city scale.

For the population-scale fleet, :class:`PopulationGeometry` scatters N
listeners uniformly over a transmitter's coverage disc.  The draws come
from counter streams (``repro.util.rng.counter_uniforms``), so any
slice of the population — a chunk, a worker's shard — lands on exactly
the same coordinates as a monolithic run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.rng import counter_uniforms

__all__ = [
    "Location",
    "distance_km",
    "haversine_km",
    "PopulationGeometry",
    "RegionPartition",
]

_EARTH_RADIUS_KM = 6_371.0


@dataclass(frozen=True)
class Location:
    """A point on Earth (degrees)."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90 <= self.lat <= 90 or not -180 <= self.lon <= 180:
            raise ValueError(f"bad coordinates ({self.lat}, {self.lon})")


def distance_km(a: Location, b: Location) -> float:
    """Great-circle distance via the haversine formula.

    >>> lahore = Location(31.5204, 74.3587)
    >>> islamabad = Location(33.6844, 73.0479)
    >>> 260 < distance_km(lahore, islamabad) < 280
    True
    """
    return float(haversine_km(a.lat, a.lon, b.lat, b.lon))


def haversine_km(lat1, lon1, lat2, lon2):
    """Vectorised haversine distance (degrees in, kilometres out).

    Accepts scalars or numpy arrays on either side; broadcasting rules
    apply, so one transmitter against a whole population is a single
    call.
    """
    phi1 = np.radians(np.asarray(lat1, dtype=np.float64))
    phi2 = np.radians(np.asarray(lat2, dtype=np.float64))
    dphi = phi2 - phi1
    dlambda = np.radians(
        np.asarray(lon2, dtype=np.float64) - np.asarray(lon1, dtype=np.float64)
    )
    h = (
        np.sin(dphi / 2.0) ** 2
        + np.cos(phi1) * np.cos(phi2) * np.sin(dlambda / 2.0) ** 2
    )
    return 2.0 * _EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))


@dataclass(frozen=True)
class PopulationGeometry:
    """N listeners scattered uniformly over a coverage disc.

    Defaults centre on Lahore (the paper's .pk corpus context) with a
    1 km radius — the rated range of the TR508-class transmitter, which
    spans the full −65…−95 dB RSSI band of the Variable-RSSI experiment.
    """

    center: Location = Location(31.5204, 74.3587)
    radius_km: float = 1.0
    # Receivers closer than this are clamped: inside a couple of metres
    # the log-distance model is meaningless (near-field, same room).
    min_distance_m: float = 2.0

    def __post_init__(self) -> None:
        if self.radius_km <= 0:
            raise ValueError("coverage radius must be positive")
        if self.min_distance_m < 0:
            raise ValueError("min_distance_m must be >= 0")

    def sample_offsets_km(
        self, key: int, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(east_km, north_km) of receivers ``indices`` from the centre.

        Uniform over the disc: radius grows as sqrt(u) so area density
        is flat.  Draw ``2 * i`` feeds receiver ``i``'s radius and
        ``2 * i + 1`` its bearing — absolute counters, so any partition
        of the population reproduces identical positions.
        """
        idx = np.asarray(indices, dtype=np.uint64)
        with np.errstate(over="ignore"):
            u_r = counter_uniforms(key, idx * np.uint64(2))
            u_t = counter_uniforms(key, idx * np.uint64(2) + np.uint64(1))
        r = self.radius_km * np.sqrt(u_r)
        theta = 2.0 * np.pi * u_t
        return r * np.sin(theta), r * np.cos(theta)

    def sample_locations(
        self, key: int, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(lat_deg, lon_deg) arrays for receivers ``indices``."""
        east_km, north_km = self.sample_offsets_km(key, indices)
        lat0 = math.radians(self.center.lat)
        dlat = np.degrees(north_km / _EARTH_RADIUS_KM)
        dlon = np.degrees(east_km / (_EARTH_RADIUS_KM * math.cos(lat0)))
        return self.center.lat + dlat, self.center.lon + dlon

    def recentred(
        self, center: Location, radius_km: float | None = None
    ) -> "PopulationGeometry":
        """The same disc shape around a different station's mast."""
        return PopulationGeometry(
            center=center,
            radius_km=self.radius_km if radius_km is None else radius_km,
            min_distance_m=self.min_distance_m,
        )

    def sample_distances_m(self, key: int, indices: np.ndarray) -> np.ndarray:
        """Transmitter distance (metres) for receivers ``indices``.

        Goes the long way round — offsets to coordinates to haversine —
        so the positions the request path sees (``Location``) and the
        distances the propagation model sees cannot drift apart.
        """
        lats, lons = self.sample_locations(key, indices)
        d_m = 1000.0 * haversine_km(self.center.lat, self.center.lon, lats, lons)
        return np.maximum(d_m, self.min_distance_m)


@dataclass(frozen=True)
class RegionPartition:
    """Nearest-station partition of a geography.

    Carves a listener population (or any set of coordinates) into the
    catchment of the nearest station in a multi-transmitter fleet, so
    Tier-2 population results can be reported per station.  Assignment
    is a pure function of the coordinates — no RNG, no tie-break state:
    exact equidistance resolves to the lower station index.
    """

    names: tuple[str, ...]
    centers: tuple[Location, ...]

    def __post_init__(self) -> None:
        if not self.names or len(self.names) != len(self.centers):
            raise ValueError("need one name per station center")
        if len(set(self.names)) != len(self.names):
            raise ValueError("duplicate station names")

    def __len__(self) -> int:
        return len(self.names)

    def assign(self, lats, lons) -> np.ndarray:
        """Index of the nearest station for each (lat, lon) pair."""
        lats = np.asarray(lats, dtype=np.float64)
        lons = np.asarray(lons, dtype=np.float64)
        d = np.stack(
            [haversine_km(c.lat, c.lon, lats, lons) for c in self.centers]
        )
        return np.argmin(d, axis=0)

    def nearest(self, where: Location) -> str:
        """Name of the station whose mast is closest to ``where``."""
        idx = int(self.assign(np.array([where.lat]), np.array([where.lon]))[0])
        return self.names[idx]
