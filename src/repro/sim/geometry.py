"""Locations and coverage geometry.

Requests carry the user's position so the server can pick the FM
transmitter whose coverage disc contains them (Section 3.1).  A simple
local equirectangular approximation is plenty at city scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Location", "distance_km"]

_EARTH_RADIUS_KM = 6_371.0


@dataclass(frozen=True)
class Location:
    """A point on Earth (degrees)."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90 <= self.lat <= 90 or not -180 <= self.lon <= 180:
            raise ValueError(f"bad coordinates ({self.lat}, {self.lon})")


def distance_km(a: Location, b: Location) -> float:
    """Great-circle distance via the haversine formula.

    >>> lahore = Location(31.5204, 74.3587)
    >>> islamabad = Location(33.6844, 73.0479)
    >>> 260 < distance_km(lahore, islamabad) < 280
    True
    """
    phi1, phi2 = math.radians(a.lat), math.radians(b.lat)
    dphi = phi2 - phi1
    dlambda = math.radians(b.lon - a.lon)
    h = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2) ** 2
    return 2 * _EARTH_RADIUS_KM * math.asin(math.sqrt(h))
