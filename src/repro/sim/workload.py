"""The three-day broadcast workload behind Figure 4(c).

The paper rendered its 100-page corpus hourly for three days and plotted
how much data waits to be broadcast as a function of the channel rate
(10/20/40 kbps) and corpus size (N=100/200).  ``BroadcastWorkload``
replays that schedule: every hour, pages whose content changed are
(re)queued on the carousel at their freshly-encoded size; the carousel
drains continuously at the configured rate.

Page sizes come from a :class:`PageSizeModel` — by default a per-page
log-normal calibrated against measured SWebp Q10/PH10k encodes of the
same generator's pages (see EXPERIMENTS.md), optionally replaced by real
measurements via :meth:`PageSizeModel.calibrate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.transport.carousel import BroadcastCarousel, CarouselItem
from repro.util.rng import counter_uniforms, derive_key, derive_rng
from repro.web.sites import SiteGenerator

__all__ = [
    "PageSizeModel",
    "WorkloadConfig",
    "BroadcastWorkload",
    "RequestTraceConfig",
    "RequestTrace",
    "generate_requests",
]

# Median Q10/PH10k encoded size (bytes) per category, calibrated against
# SWebp measurements of the generator's corpus.
_CATEGORY_MEDIAN_BYTES = {
    "news": 300_000,
    "sports": 280_000,
    "portal": 260_000,
    "ecommerce": 240_000,
    "education": 180_000,
    "government": 150_000,
}
_SIGMA = 0.35  # log-normal spread across pages
_EPOCH_JITTER = 0.08  # hour-to-hour size wobble of the same page


class PageSizeModel:
    """Bytes-on-air of each (url, content epoch) pair."""

    def __init__(self, generator: SiteGenerator, quality: int = 10) -> None:
        self._gen = generator
        self.quality = quality
        self._measured: dict[str, int] = {}
        # Quality scaling relative to Q10 (matches the Fig. 4(b) sweep).
        self._quality_scale = {10: 1.0, 50: 1.8, 90: 3.4}.get(quality, 1.0)

    def calibrate(self, measured: dict[str, int]) -> None:
        """Replace modelled base sizes with real encoder measurements."""
        self._measured.update(measured)

    def base_size(self, url: str) -> int:
        """The page's typical encoded size."""
        if url in self._measured:
            return self._measured[url]
        domain = url.partition("/")[0]
        category = self._gen.website(domain).category
        rng = derive_rng(self._gen.seed, "size", url)
        size = _CATEGORY_MEDIAN_BYTES[category] * float(
            rng.lognormal(mean=0.0, sigma=_SIGMA)
        )
        return int(size * self._quality_scale)

    def size_at(self, url: str, epoch: int) -> int:
        """Size of the page's render at a specific content epoch."""
        jitter = derive_rng(self._gen.seed, "size-jitter", url, epoch)
        return int(self.base_size(url) * float(jitter.lognormal(0.0, _EPOCH_JITTER)))


@dataclass(frozen=True)
class RequestTraceConfig:
    """One simulated day of SMS page-request traffic.

    URL popularity is Zipf over the corpus's Tranco rank order (the same
    ``1/rank^0.9`` law :class:`~repro.web.tranco.TrancoList` assigns its
    popularity weights), and arrivals are a Poisson process under the
    simulated clock.  With ``n_requests`` set, the trace is the Poisson
    process conditioned on that exact count — arrival times become order
    statistics of uniforms — so benchmarks can pin "10⁶ queued requests"
    precisely; otherwise ``rate_per_s`` drives an unconditioned process.
    """

    hours: float = 24.0
    n_pages: int = 100
    rate_per_s: float = 12.0
    n_requests: int | None = None  # exact count (overrides rate_per_s)
    zipf_exponent: float = 0.9  # matches TrancoList's weight law
    seed: int = 42

    @property
    def duration_s(self) -> float:
        return self.hours * 3600.0


@dataclass(frozen=True)
class RequestTrace:
    """Arrival times (sorted, seconds) and requested page indices."""

    times: np.ndarray
    url_index: np.ndarray
    n_pages: int
    duration_s: float

    @property
    def n_requests(self) -> int:
        return int(self.times.size)


def generate_requests(config: RequestTraceConfig) -> RequestTrace:
    """Vectorised, fully deterministic request-trace generation.

    All draws come from the counter RNG (pure functions of the seed and
    an absolute draw index), so the trace is bit-identical regardless of
    how — or in what order — callers slice it into ingest batches.
    """
    duration = config.duration_s
    key_t = derive_key(config.seed, "request-arrivals")
    key_u = derive_key(config.seed, "request-urls")

    if config.n_requests is not None:
        n = int(config.n_requests)
        times = np.sort(counter_uniforms(key_t, np.arange(n)) * duration)
    else:
        # Exponential inter-arrival gaps, drawn in blocks of absolute
        # counters until the cumulative clock passes the horizon.
        rate = config.rate_per_s
        if rate <= 0:
            raise ValueError("rate_per_s must be positive")
        expected = rate * duration
        block = int(expected + 10.0 * np.sqrt(expected) + 100)
        gaps: list[np.ndarray] = []
        start, total = 0, 0.0
        while True:
            u = counter_uniforms(key_t, np.arange(start, start + block))
            g = -np.log1p(-u) / rate
            gaps.append(g)
            start += block
            total += float(g.sum())
            if total >= duration:
                break
        times = np.cumsum(np.concatenate(gaps))
        times = times[times < duration]
        n = times.size

    # Zipf-over-rank page choice: corpus URLs are already in Tranco rank
    # order, so index i gets weight 1/(i+1)^s.
    weights = 1.0 / np.arange(1, config.n_pages + 1) ** config.zipf_exponent
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    u = counter_uniforms(key_u, np.arange(n))
    url_index = np.searchsorted(cdf, u, side="right").astype(np.int32)
    np.minimum(url_index, config.n_pages - 1, out=url_index)
    return RequestTrace(times, url_index, config.n_pages, duration)


@dataclass(frozen=True)
class WorkloadConfig:
    """One Figure 4(c) curve."""

    rate_bps: float = 10_000.0
    n_pages: int = 100  # 100 -> 25 sites, 200 -> 50 sites
    n_hours: int = 72  # the paper collected 3 days
    sample_minutes: int = 6  # backlog sampling resolution
    seed: int = 42
    quality: int = 10

    @property
    def n_sites(self) -> int:
        if self.n_pages % 4 != 0:
            raise ValueError("n_pages must be a multiple of 4 (1 landing + 3 internal)")
        return self.n_pages // 4


@dataclass
class WorkloadResult:
    """Backlog time series plus bookkeeping."""

    times_hours: np.ndarray
    backlog_mb: np.ndarray
    enqueued_mb_per_hour: np.ndarray
    completed_pages: int

    def peak_backlog_mb(self) -> float:
        return float(np.max(self.backlog_mb))

    def fraction_time_empty(self) -> float:
        """Share of samples with an empty queue (drained)."""
        return float(np.mean(self.backlog_mb < 1e-6))


class BroadcastWorkload:
    """Replay the hourly re-render schedule against a carousel."""

    def __init__(
        self,
        config: WorkloadConfig = WorkloadConfig(),
        size_model: PageSizeModel | None = None,
    ) -> None:
        self.config = config
        self.generator = SiteGenerator(seed=config.seed, n_sites=config.n_sites)
        self.size_model = size_model or PageSizeModel(
            self.generator, quality=config.quality
        )

    def enqueue_hour(
        self, carousel: BroadcastCarousel, hour: int, pipeline=None
    ) -> int:
        """(Re)queue every page whose content changed at ``hour``.

        This is the hourly half of the Figure 4(c) schedule, shared by
        the batch :meth:`run` loop and the chunked ``repro stream``
        driver.  Returns the bytes enqueued.
        """
        added = 0
        for i, url in enumerate(self.generator.all_urls()):
            if hour == 0 or self.generator.changed_at(url, hour):
                epoch = self.generator.effective_epoch(url, hour)
                if pipeline is not None:
                    size = len(pipeline.encode_page(url, hour).data)
                else:
                    size = self.size_model.size_at(url, epoch)
                carousel.enqueue(CarouselItem(url, size, priority=1.0 / (i + 1)))
                added += size
        return added

    def run(self, pipeline=None) -> WorkloadResult:
        """Simulate the full horizon; returns the backlog series.

        With ``pipeline`` (a :class:`repro.server.catalog.CatalogPipeline`
        sharing this workload's generator config), every (re)queued page
        is priced at its *measured* encoded size: the pipeline renders +
        encodes through its :class:`~repro.server.cache.BundleStore`, so
        a page that did not change since the last hour — or since a
        previous run over the same store, e.g. another rate point of the
        Figure 4(c) sweep — reuses the stored bytes instead of
        re-encoding.
        """
        cfg = self.config
        if pipeline is not None and pipeline.config.seed != cfg.seed:
            raise ValueError("pipeline seed differs from workload seed")
        carousel = BroadcastCarousel(cfg.rate_bps)

        times: list[float] = []
        backlog: list[float] = []
        hourly_mb: list[float] = []
        step_s = cfg.sample_minutes * 60
        samples_per_hour = 3600 // step_s

        for hour in range(cfg.n_hours):
            added = self.enqueue_hour(carousel, hour, pipeline=pipeline)
            hourly_mb.append(added / 1e6)
            for k in range(samples_per_hour):
                carousel.drain(step_s)
                times.append(hour + (k + 1) / samples_per_hour)
                backlog.append(carousel.backlog_bytes() / 1e6)

        return WorkloadResult(
            np.array(times),
            np.array(backlog),
            np.array(hourly_mb),
            completed_pages=len(carousel.completed),
        )
