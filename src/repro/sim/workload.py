"""The three-day broadcast workload behind Figure 4(c).

The paper rendered its 100-page corpus hourly for three days and plotted
how much data waits to be broadcast as a function of the channel rate
(10/20/40 kbps) and corpus size (N=100/200).  ``BroadcastWorkload``
replays that schedule: every hour, pages whose content changed are
(re)queued on the carousel at their freshly-encoded size; the carousel
drains continuously at the configured rate.

Page sizes come from a :class:`PageSizeModel` — by default a per-page
log-normal calibrated against measured SWebp Q10/PH10k encodes of the
same generator's pages (see EXPERIMENTS.md), optionally replaced by real
measurements via :meth:`PageSizeModel.calibrate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.transport.carousel import BroadcastCarousel, CarouselItem
from repro.util.rng import derive_rng
from repro.web.sites import SiteGenerator

__all__ = ["PageSizeModel", "WorkloadConfig", "BroadcastWorkload"]

# Median Q10/PH10k encoded size (bytes) per category, calibrated against
# SWebp measurements of the generator's corpus.
_CATEGORY_MEDIAN_BYTES = {
    "news": 300_000,
    "sports": 280_000,
    "portal": 260_000,
    "ecommerce": 240_000,
    "education": 180_000,
    "government": 150_000,
}
_SIGMA = 0.35  # log-normal spread across pages
_EPOCH_JITTER = 0.08  # hour-to-hour size wobble of the same page


class PageSizeModel:
    """Bytes-on-air of each (url, content epoch) pair."""

    def __init__(self, generator: SiteGenerator, quality: int = 10) -> None:
        self._gen = generator
        self.quality = quality
        self._measured: dict[str, int] = {}
        # Quality scaling relative to Q10 (matches the Fig. 4(b) sweep).
        self._quality_scale = {10: 1.0, 50: 1.8, 90: 3.4}.get(quality, 1.0)

    def calibrate(self, measured: dict[str, int]) -> None:
        """Replace modelled base sizes with real encoder measurements."""
        self._measured.update(measured)

    def base_size(self, url: str) -> int:
        """The page's typical encoded size."""
        if url in self._measured:
            return self._measured[url]
        domain = url.partition("/")[0]
        category = self._gen.website(domain).category
        rng = derive_rng(self._gen.seed, "size", url)
        size = _CATEGORY_MEDIAN_BYTES[category] * float(
            rng.lognormal(mean=0.0, sigma=_SIGMA)
        )
        return int(size * self._quality_scale)

    def size_at(self, url: str, epoch: int) -> int:
        """Size of the page's render at a specific content epoch."""
        jitter = derive_rng(self._gen.seed, "size-jitter", url, epoch)
        return int(self.base_size(url) * float(jitter.lognormal(0.0, _EPOCH_JITTER)))


@dataclass(frozen=True)
class WorkloadConfig:
    """One Figure 4(c) curve."""

    rate_bps: float = 10_000.0
    n_pages: int = 100  # 100 -> 25 sites, 200 -> 50 sites
    n_hours: int = 72  # the paper collected 3 days
    sample_minutes: int = 6  # backlog sampling resolution
    seed: int = 42
    quality: int = 10

    @property
    def n_sites(self) -> int:
        if self.n_pages % 4 != 0:
            raise ValueError("n_pages must be a multiple of 4 (1 landing + 3 internal)")
        return self.n_pages // 4


@dataclass
class WorkloadResult:
    """Backlog time series plus bookkeeping."""

    times_hours: np.ndarray
    backlog_mb: np.ndarray
    enqueued_mb_per_hour: np.ndarray
    completed_pages: int

    def peak_backlog_mb(self) -> float:
        return float(np.max(self.backlog_mb))

    def fraction_time_empty(self) -> float:
        """Share of samples with an empty queue (drained)."""
        return float(np.mean(self.backlog_mb < 1e-6))


class BroadcastWorkload:
    """Replay the hourly re-render schedule against a carousel."""

    def __init__(
        self,
        config: WorkloadConfig = WorkloadConfig(),
        size_model: PageSizeModel | None = None,
    ) -> None:
        self.config = config
        self.generator = SiteGenerator(seed=config.seed, n_sites=config.n_sites)
        self.size_model = size_model or PageSizeModel(
            self.generator, quality=config.quality
        )

    def enqueue_hour(
        self, carousel: BroadcastCarousel, hour: int, pipeline=None
    ) -> int:
        """(Re)queue every page whose content changed at ``hour``.

        This is the hourly half of the Figure 4(c) schedule, shared by
        the batch :meth:`run` loop and the chunked ``repro stream``
        driver.  Returns the bytes enqueued.
        """
        added = 0
        for i, url in enumerate(self.generator.all_urls()):
            if hour == 0 or self.generator.changed_at(url, hour):
                epoch = self.generator.effective_epoch(url, hour)
                if pipeline is not None:
                    size = len(pipeline.encode_page(url, hour).data)
                else:
                    size = self.size_model.size_at(url, epoch)
                carousel.enqueue(CarouselItem(url, size, priority=1.0 / (i + 1)))
                added += size
        return added

    def run(self, pipeline=None) -> WorkloadResult:
        """Simulate the full horizon; returns the backlog series.

        With ``pipeline`` (a :class:`repro.server.catalog.CatalogPipeline`
        sharing this workload's generator config), every (re)queued page
        is priced at its *measured* encoded size: the pipeline renders +
        encodes through its :class:`~repro.server.cache.BundleStore`, so
        a page that did not change since the last hour — or since a
        previous run over the same store, e.g. another rate point of the
        Figure 4(c) sweep — reuses the stored bytes instead of
        re-encoding.
        """
        cfg = self.config
        if pipeline is not None and pipeline.config.seed != cfg.seed:
            raise ValueError("pipeline seed differs from workload seed")
        carousel = BroadcastCarousel(cfg.rate_bps)

        times: list[float] = []
        backlog: list[float] = []
        hourly_mb: list[float] = []
        step_s = cfg.sample_minutes * 60
        samples_per_hour = 3600 // step_s

        for hour in range(cfg.n_hours):
            added = self.enqueue_hour(carousel, hour, pipeline=pipeline)
            hourly_mb.append(added / 1e6)
            for k in range(samples_per_hour):
                carousel.drain(step_s)
                times.append(hour + (k + 1) / samples_per_hour)
                backlog.append(carousel.backlog_bytes() / 1e6)

        return WorkloadResult(
            np.array(times),
            np.array(backlog),
            np.array(hourly_mb),
            completed_pages=len(carousel.completed),
        )
