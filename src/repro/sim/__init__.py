"""Simulation substrate: time, geometry, workload, and the user study."""

from repro.sim.clock import SimClock
from repro.sim.geometry import Location, distance_km
from repro.sim.workload import BroadcastWorkload, WorkloadConfig, PageSizeModel
from repro.sim.userstudy import UserStudy, StudyConfig, RatingRecord
from repro.sim.receivers import FleetConfig, FleetResult, ReceiverReport, run_fleet

__all__ = [
    "SimClock",
    "Location",
    "distance_km",
    "BroadcastWorkload",
    "WorkloadConfig",
    "PageSizeModel",
    "UserStudy",
    "StudyConfig",
    "RatingRecord",
    "FleetConfig",
    "FleetResult",
    "ReceiverReport",
    "run_fleet",
]
