"""Simulation substrate: time, geometry, workload, and the user study."""

from repro.sim.clock import SimClock
from repro.sim.geometry import Location, PopulationGeometry, distance_km, haversine_km
from repro.sim.workload import BroadcastWorkload, WorkloadConfig, PageSizeModel
from repro.sim.userstudy import UserStudy, StudyConfig, RatingRecord
from repro.sim.population import PopulationConfig, PopulationResult, run_population
from repro.sim.receivers import (
    FleetConfig,
    FleetResult,
    ReceiverReport,
    calibrate_loss_model,
    run_fleet,
)
from repro.sim.tournament import (
    CellResult,
    SweepStore,
    TournamentConfig,
    TournamentResult,
    run_tournament,
    write_frontier_report,
)

__all__ = [
    "SimClock",
    "Location",
    "PopulationGeometry",
    "distance_km",
    "haversine_km",
    "BroadcastWorkload",
    "WorkloadConfig",
    "PageSizeModel",
    "UserStudy",
    "StudyConfig",
    "RatingRecord",
    "FleetConfig",
    "FleetResult",
    "ReceiverReport",
    "PopulationConfig",
    "PopulationResult",
    "CellResult",
    "SweepStore",
    "TournamentConfig",
    "TournamentResult",
    "calibrate_loss_model",
    "run_fleet",
    "run_population",
    "run_tournament",
    "write_frontier_report",
]
