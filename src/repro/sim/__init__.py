"""Simulation substrate: time, geometry, workload, and the user study."""

from repro.sim.clock import SimClock
from repro.sim.geometry import Location, distance_km
from repro.sim.workload import BroadcastWorkload, WorkloadConfig, PageSizeModel
from repro.sim.userstudy import UserStudy, StudyConfig, RatingRecord

__all__ = [
    "SimClock",
    "Location",
    "distance_km",
    "BroadcastWorkload",
    "WorkloadConfig",
    "PageSizeModel",
    "UserStudy",
    "StudyConfig",
    "RatingRecord",
]
