"""Tier 2 of the two-tier fleet: a calibrated statistical population.

The full-modem fleet (``repro.sim.receivers.run_fleet``) is the ground
truth but tops out at tens of receivers — every one demodulates real
audio.  This module simulates the *other* million listeners of a
city-scale broadcast statistically:

1. positions are scattered over the transmitter's coverage disc
   (:class:`repro.sim.geometry.PopulationGeometry`),
2. RSSI comes from the log-distance propagation model plus log-normal
   shadowing (:class:`repro.radio.propagation.PropagationModel`),
3. RSSI maps to audio SNR through the FM threshold curve and audio SNR
   to per-frame loss probability through a logistic FER curve
   (:class:`repro.radio.lossmodel.FrameLossModel` — ideally one fitted
   to Tier-1 outcomes via ``FrameLossModel.fit_from_runs``), and
4. frame losses are Bernoulli draws batched as numpy arrays across all
   receivers at once, then aggregated per frame → per page → per
   receiver into population loss and readability distributions.

Every draw is a pure function of ``(master_seed, stream, receiver,
draw index)`` via the counter RNG in ``repro.util.rng``, so serial,
chunked, and multiprocess runs are bit-identical by construction.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from dataclasses import dataclass

import numpy as np

from repro.radio.lossmodel import FrameLossModel
from repro.radio.propagation import PropagationModel
from repro.sim.geometry import PopulationGeometry, RegionPartition
from repro.util.rng import counter_normals, counter_uniforms, derive_key

__all__ = [
    "PopulationConfig",
    "PopulationResult",
    "run_population",
    "StationCoverage",
    "per_station_coverage",
]

#: Text-readability steepness of the synthetic user study (Figure 5):
#: mean rating = 10 * exp(-k * damage).  The population tier equates
#: pixel damage with the frame-loss fraction — the blocks a lost frame
#: carried are exactly the pixels that go dark.
_K_TEXT = 8.0


@dataclass(frozen=True)
class PopulationConfig:
    """One statistical population run: who listens where, for how long."""

    n_receivers: int = 100_000
    hours: float = 48.0
    master_seed: int = 0
    profile: str = "sonic-ofdm"
    # Carousel shape: the Fig. 4(c) catalog is 200 pages; frames per
    # page at the capped page size used throughout the CLI demos.
    pages: int = 200
    frames_per_page: int = 64
    # Frames a page may lose and still decode (UEP / FEC headroom).
    page_loss_tolerance: int = 0
    geometry: PopulationGeometry = PopulationGeometry()
    propagation: PropagationModel = PropagationModel()
    shadowing_sigma_db: float = 4.0
    # Receivers processed per vectorised batch: bounds working memory
    # (a few float64 arrays of this length) without affecting results.
    chunk_receivers: int = 65_536
    # At most this many total frames are drawn per-frame (exact
    # Bernoulli); longer horizons use the normal approximation of the
    # per-receiver binomial loss count, which at >= thousands of frames
    # is indistinguishable and O(1) per receiver.  A config constant —
    # never derived from chunking — so partitioning cannot change which
    # path runs.
    exact_frame_threshold: int = 4_096
    # Seconds of air time per frame; None = derive from the profile.
    frame_duration_s: float | None = None

    def __post_init__(self) -> None:
        if self.n_receivers < 1:
            raise ValueError("population needs at least one receiver")
        if self.hours <= 0:
            raise ValueError("hours must be positive")
        if self.pages < 1 or self.frames_per_page < 1:
            raise ValueError("carousel needs at least one page and frame")
        if self.page_loss_tolerance < 0:
            raise ValueError("page_loss_tolerance must be >= 0")
        if self.chunk_receivers < 1:
            raise ValueError("chunk_receivers must be >= 1")

    def resolved_frame_duration_s(self) -> float:
        if self.frame_duration_s is not None:
            return self.frame_duration_s
        from repro.modem.modem import Modem

        return Modem(self.profile).frame_duration_s

    def frames_total(self) -> int:
        """Frames on air over the whole horizon (one receiver's view)."""
        return max(1, int(self.hours * 3600.0 / self.resolved_frame_duration_s()))


@dataclass(frozen=True)
class PopulationResult:
    """Population-level outcome distributions of one Tier-2 run."""

    config: PopulationConfig
    frames_per_receiver: int
    elapsed_s: float
    distances_m: np.ndarray  # per receiver
    rssi_dbm: np.ndarray  # per receiver, shadowing included
    loss_probs: np.ndarray  # model per-frame loss probability
    loss_rates: np.ndarray  # empirical frame-loss rate (drawn)
    pages_decoded: np.ndarray  # distinct catalog pages decoded
    readability: np.ndarray  # 0-10 text-readability proxy (Fig. 5 curve)

    @property
    def n_receivers(self) -> int:
        return int(self.distances_m.size)

    @property
    def receiver_frames(self) -> int:
        """Total receiver-frames simulated (receivers x frames)."""
        return self.n_receivers * self.frames_per_receiver

    @property
    def receiver_frames_per_s(self) -> float:
        return self.receiver_frames / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def mean_loss_rate(self) -> float:
        return float(self.loss_rates.mean())

    @property
    def pages_fraction(self) -> np.ndarray:
        return self.pages_decoded / self.config.pages

    def loss_quantiles(self, qs=(0.05, 0.25, 0.5, 0.75, 0.95)) -> np.ndarray:
        return np.quantile(self.loss_rates, qs)

    def readability_quantiles(self, qs=(0.05, 0.25, 0.5, 0.75, 0.95)) -> np.ndarray:
        return np.quantile(self.readability, qs)

    def loss_by_distance(self, n_bins: int = 8) -> list[tuple[float, float, float, int]]:
        """Fig. 4(a)-style view: (bin_lo_m, bin_hi_m, mean_loss, count)."""
        edges = np.linspace(0.0, float(self.distances_m.max()), n_bins + 1)
        out = []
        which = np.digitize(self.distances_m, edges[1:-1])
        for b in range(n_bins):
            mask = which == b
            n = int(mask.sum())
            mean = float(self.loss_rates[mask].mean()) if n else float("nan")
            out.append((float(edges[b]), float(edges[b + 1]), mean, n))
        return out


@dataclass(frozen=True)
class _PopulationPlan:
    """Derived constants shared by every chunk worker."""

    frames_total: int
    base_cycles: int  # full carousel cycles within the horizon
    extra_pages: int  # pages 0..extra-1 get one extra (partial) cycle
    key_position: int
    key_shadow: int
    key_frames: int
    key_pages: int


def _make_plan(config: PopulationConfig) -> _PopulationPlan:
    frames_total = config.frames_total()
    per_cycle = config.pages * config.frames_per_page
    base_cycles = frames_total // per_cycle
    extra_pages = (frames_total % per_cycle) // config.frames_per_page
    seed = config.master_seed
    return _PopulationPlan(
        frames_total=frames_total,
        base_cycles=base_cycles,
        extra_pages=extra_pages,
        key_position=derive_key(seed, "population", "position"),
        key_shadow=derive_key(seed, "population", "shadow"),
        key_frames=derive_key(seed, "population", "frames"),
        key_pages=derive_key(seed, "population", "pages"),
    )


def _page_success_probability(
    p_loss: np.ndarray, frames_per_page: int, tolerance: int
) -> np.ndarray:
    """P(page decodes in one carousel cycle) per receiver.

    A page survives a cycle when at most ``tolerance`` of its
    ``frames_per_page`` frames are lost — the binomial CDF, summed
    term-by-term (the tolerance is small, so this stays O(t) vectorised
    passes rather than a scipy dependency).
    """
    p = np.clip(p_loss, 0.0, 1.0)
    q = np.zeros_like(p)
    log_p = np.log(np.clip(p, 1e-300, 1.0))
    log_1mp = np.log1p(-np.clip(p, 0.0, 1.0 - 1e-15))
    n = frames_per_page
    for k in range(min(tolerance, n) + 1):
        log_comb = math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
        q += np.exp(log_comb + k * log_p + (n - k) * log_1mp)
    return np.clip(q, 0.0, 1.0)


def _simulate_chunk(
    model: FrameLossModel,
    config: PopulationConfig,
    plan: _PopulationPlan,
    lo: int,
    hi: int,
) -> tuple[np.ndarray, ...]:
    """All Tier-2 statistics for receivers ``[lo, hi)``.

    Pure function of the configuration and the absolute receiver
    indices — the partition into chunks (and which process runs which
    chunk) cannot influence any value.
    """
    idx = np.arange(lo, hi, dtype=np.uint64)
    n = idx.size

    # 1. Geometry: positions -> transmitter distance.
    distances = config.geometry.sample_distances_m(plan.key_position, idx)

    # 2. Radio: RSSI with per-receiver shadowing, then audio SNR.
    shadow = (
        counter_normals(plan.key_shadow, idx) * config.shadowing_sigma_db
        if config.shadowing_sigma_db > 0
        else None
    )
    rssi = config.propagation.rssi_dbm_batch(distances, shadow)
    snr = model.audio_snr_from_rssi(rssi)
    p_loss = np.clip(model.frame_error_probability(snr), 0.0, 1.0)

    # 3. Frame-level losses across the whole horizon.
    frames_total = plan.frames_total
    if frames_total <= config.exact_frame_threshold:
        # Exact per-frame Bernoulli: counter (i * F + j) for receiver i,
        # frame j.  Frame blocks bound the temporary to chunk x block.
        lost = np.zeros(n, dtype=np.float64)
        block = max(1, (1 << 22) // max(n, 1))
        with np.errstate(over="ignore"):
            base = idx * np.uint64(frames_total)
            for j0 in range(0, frames_total, block):
                j = np.arange(j0, min(j0 + block, frames_total), dtype=np.uint64)
                u = counter_uniforms(plan.key_frames, base[:, None] + j[None, :])
                lost += (u < p_loss[:, None]).sum(axis=1)
    else:
        # Normal approximation of Binomial(F, p): one draw per receiver.
        z = counter_normals(plan.key_frames, idx)
        mean = frames_total * p_loss
        sd = np.sqrt(frames_total * p_loss * (1.0 - p_loss))
        lost = np.clip(np.rint(mean + sd * z), 0.0, float(frames_total))
    loss_rates = lost / frames_total

    # 4. Page-level outcomes: P(decoded by end of horizon) per page,
    # one Bernoulli draw per (receiver, page) at counter (i * P + j).
    q_cycle = _page_success_probability(
        p_loss, config.frames_per_page, config.page_loss_tolerance
    )
    log_miss = np.log1p(-np.clip(q_cycle, 0.0, 1.0 - 1e-15))
    pages_decoded = np.zeros(n, dtype=np.int64)
    with np.errstate(over="ignore"):
        page_base = idx * np.uint64(config.pages)
        for j in range(config.pages):
            cycles = plan.base_cycles + (1 if j < plan.extra_pages else 0)
            if cycles == 0:
                continue
            p_decoded = -np.expm1(cycles * log_miss)
            u = counter_uniforms(plan.key_pages, page_base + np.uint64(j))
            pages_decoded += u < p_decoded

    # 5. Readability proxy: the user study's text question maps pixel
    # damage to a 0-10 rating; a receiver's long-run damage fraction is
    # its frame-loss rate.
    readability = 10.0 * np.exp(-_K_TEXT * loss_rates)

    return distances, rssi, p_loss, loss_rates, pages_decoded, readability


def _chunk_worker(
    args: tuple[FrameLossModel, PopulationConfig, _PopulationPlan, int, int],
) -> tuple[np.ndarray, ...]:
    return _simulate_chunk(*args)


def run_population(
    model: FrameLossModel,
    config: PopulationConfig = PopulationConfig(),
    processes: int | None = None,
) -> PopulationResult:
    """Simulate ``config.n_receivers`` statistical receivers.

    ``processes`` partitions the population across a multiprocessing
    pool; because every draw is counter-keyed on absolute receiver
    indices, the result is bit-identical for any ``processes`` or
    ``chunk_receivers`` value.
    """
    t0 = time.perf_counter()
    plan = _make_plan(config)
    n = config.n_receivers
    bounds = [
        (lo, min(lo + config.chunk_receivers, n))
        for lo in range(0, n, config.chunk_receivers)
    ]
    if processes is None:
        processes = 1
    processes = max(1, min(int(processes), len(bounds)))

    if processes == 1:
        parts = [_simulate_chunk(model, config, plan, lo, hi) for lo, hi in bounds]
    else:
        with multiprocessing.Pool(processes) as pool:
            parts = pool.map(
                _chunk_worker,
                [(model, config, plan, lo, hi) for lo, hi in bounds],
            )

    merged = [np.concatenate(arrays) for arrays in zip(*parts)]
    distances, rssi, p_loss, loss_rates, pages_decoded, readability = merged
    return PopulationResult(
        config=config,
        frames_per_receiver=plan.frames_total,
        elapsed_s=time.perf_counter() - t0,
        distances_m=distances,
        rssi_dbm=rssi,
        loss_probs=p_loss,
        loss_rates=loss_rates,
        pages_decoded=pages_decoded,
        readability=readability,
    )


@dataclass(frozen=True)
class StationCoverage:
    """One station's slice of a region-partitioned population run."""

    station: str
    n_receivers: int
    mean_loss_rate: float
    mean_readability: float
    mean_pages_fraction: float

    def to_json_dict(self) -> dict:
        return {
            "station": self.station,
            "n_receivers": self.n_receivers,
            "mean_loss_rate": round(self.mean_loss_rate, 4),
            "mean_readability": round(self.mean_readability, 2),
            "mean_pages_fraction": round(self.mean_pages_fraction, 4),
        }


def per_station_coverage(
    result: PopulationResult, partition: RegionPartition
) -> list[StationCoverage]:
    """Split a Tier-2 population run into per-station coverage reports.

    Receiver positions are regenerated from the run's own counter keys
    (they are a pure function of the seed, so nothing needs storing) and
    each receiver is attributed to the nearest station in ``partition``.
    Empty catchments report NaN means rather than vanishing, so a fleet
    dashboard always shows every station.
    """
    plan = _make_plan(result.config)
    idx = np.arange(result.n_receivers, dtype=np.uint64)
    lats, lons = result.config.geometry.sample_locations(plan.key_position, idx)
    which = partition.assign(lats, lons)
    pages_fraction = result.pages_fraction
    out = []
    for i, name in enumerate(partition.names):
        mask = which == i
        n = int(mask.sum())
        out.append(
            StationCoverage(
                station=name,
                n_receivers=n,
                mean_loss_rate=float(result.loss_rates[mask].mean())
                if n
                else float("nan"),
                mean_readability=float(result.readability[mask].mean())
                if n
                else float("nan"),
                mean_pages_fraction=float(pages_fraction[mask].mean())
                if n
                else float("nan"),
            )
        )
    return out
