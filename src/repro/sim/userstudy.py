"""Synthetic user study: readability under frame loss (Figure 5).

The paper recruited 151 students to rate 400 screenshots (top-50 .pk
pages x loss in {5,10,20,50} % x {with, without} interpolation) on two
0-10 Likert questions: (a) content understanding and (b) text
readability.  Offline, raters are replaced by a psychometric model whose
*input is the actual pixel damage* of the actual screenshots run through
the actual loss + interpolation code:

1. each screenshot's damage is measured (overall pixel damage for
   question-a, damage restricted to text strokes for question-b);
2. a rater's score is a damage-driven mean rating plus per-rater bias
   and per-judgement noise, clipped to the 0-10 scale;
3. each of the 151 raters scores 20 random screenshots, and the median
   rating per page is reported exactly as in the paper's boxplots.

Calibration of the two exponential damage->rating curves is documented
in DESIGN.md; everything between the curves and the figures (who wins,
the >=1-point interpolation gain, text being more fragile) is emergent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.imaging.interpolate import interpolate_missing
from repro.util.rng import derive_rng

__all__ = ["StudyConfig", "RatingRecord", "ScreenshotStats", "UserStudy"]

#: damage -> mean-rating curve steepness (content / text questions)
_K_CONTENT = 7.5
_K_TEXT = 8.0
#: content comprehension depends on the text too: effective damage for
#: question (a) blends overall pixel damage with text-stroke damage.
_CONTENT_TEXT_WEIGHT = 0.45
_RATER_BIAS_SIGMA = 0.7
_RATING_NOISE_SIGMA = 1.2


@dataclass(frozen=True)
class StudyConfig:
    """Study dimensioning (defaults are the paper's)."""

    n_raters: int = 151
    screenshots_per_rater: int = 20
    loss_rates: tuple[float, ...] = (0.05, 0.10, 0.20, 0.50)
    seed: int = 7


@dataclass(frozen=True)
class ScreenshotStats:
    """One of the 400 study screenshots, reduced to its damage numbers."""

    page_index: int
    loss_rate: float
    interpolated: bool
    content_damage: float  # fraction of all pixels visibly wrong
    text_damage: float  # fraction of text-stroke pixels visibly wrong


@dataclass(frozen=True)
class RatingRecord:
    """One rater's judgement of one screenshot on one question."""

    rater: int
    page_index: int
    loss_rate: float
    interpolated: bool
    question: str  # "content" or "text"
    rating: int


class UserStudy:
    """Build screenshots, measure damage, and simulate the rating panel."""

    def __init__(self, config: StudyConfig = StudyConfig()) -> None:
        self.config = config

    # -- damage measurement ------------------------------------------------------------

    @staticmethod
    def measure_damage(
        original: np.ndarray, shown: np.ndarray
    ) -> tuple[float, float]:
        """(content_damage, text_damage) of a displayed screenshot."""
        orig = np.asarray(original, dtype=np.int16)
        disp = np.asarray(shown, dtype=np.int16)
        if orig.shape != disp.shape:
            raise ValueError("image shapes differ")
        diff = np.abs(orig - disp).max(axis=-1) if orig.ndim == 3 else np.abs(
            orig - disp
        )
        content_damage = float(np.mean(diff > 30))
        luma = orig.mean(axis=-1) if orig.ndim == 3 else orig
        text_mask = luma < 128  # dark strokes on light background
        if not np.any(text_mask):
            return content_damage, content_damage
        text_damage = float(np.mean(diff[text_mask] > 60))
        return content_damage, text_damage

    def screenshot_stats(
        self,
        page_index: int,
        original: np.ndarray,
        missing_mask: np.ndarray,
        loss_rate: float,
    ) -> list[ScreenshotStats]:
        """Stats for both variants (dark pixels vs interpolated)."""
        dark = np.asarray(original).copy()
        dark[missing_mask] = 0
        repaired = interpolate_missing(dark, missing_mask)
        out = []
        for shown, interp in ((dark, False), (repaired, True)):
            content_damage, text_damage = self.measure_damage(original, shown)
            out.append(
                ScreenshotStats(page_index, loss_rate, interp, content_damage, text_damage)
            )
        return out

    # -- the rating model ------------------------------------------------------------

    @staticmethod
    def mean_rating(
        content_damage: float, text_damage: float, question: str
    ) -> float:
        """Expected rating of an average rater for a damage pair.

        Question (a) — content understanding — blends overall damage
        with text damage (a page whose prose is smeared is hard to
        understand even when its blocks survive); question (b) — text
        readability — depends on the strokes alone.
        """
        if question == "content":
            damage = (
                (1.0 - _CONTENT_TEXT_WEIGHT) * content_damage
                + _CONTENT_TEXT_WEIGHT * text_damage
            )
            k = _K_CONTENT
        else:
            damage = text_damage
            k = _K_TEXT
        return 10.0 * float(np.exp(-k * damage))

    def simulate_ratings(
        self, screenshots: list[ScreenshotStats]
    ) -> list[RatingRecord]:
        """Assign raters to screenshots and produce all judgements."""
        cfg = self.config
        rng = derive_rng(cfg.seed, "study-assignment")
        records: list[RatingRecord] = []
        n_shots = len(screenshots)
        if n_shots == 0:
            return []
        for rater in range(cfg.n_raters):
            bias = float(
                derive_rng(cfg.seed, "rater", rater).normal(0.0, _RATER_BIAS_SIGMA)
            )
            chosen = rng.choice(
                n_shots, size=min(cfg.screenshots_per_rater, n_shots), replace=False
            )
            for idx in chosen:
                shot = screenshots[int(idx)]
                for question in ("content", "text"):
                    noise = float(
                        derive_rng(cfg.seed, "noise", rater, int(idx), question).normal(
                            0.0, _RATING_NOISE_SIGMA
                        )
                    )
                    value = (
                        self.mean_rating(
                            shot.content_damage, shot.text_damage, question
                        )
                        + bias
                        + noise
                    )
                    records.append(
                        RatingRecord(
                            rater,
                            shot.page_index,
                            shot.loss_rate,
                            shot.interpolated,
                            question,
                            int(np.clip(round(value), 0, 10)),
                        )
                    )
        return records

    # -- aggregation (the Figure 5 boxplot statistic) ---------------------------

    @staticmethod
    def median_per_page(
        records: list[RatingRecord],
        loss_rate: float,
        interpolated: bool,
        question: str,
    ) -> list[float]:
        """Median rating per page for one (loss, interp, question) cell."""
        by_page: dict[int, list[int]] = {}
        for r in records:
            if (
                abs(r.loss_rate - loss_rate) < 1e-9
                and r.interpolated == interpolated
                and r.question == question
            ):
                by_page.setdefault(r.page_index, []).append(r.rating)
        return [float(np.median(v)) for _, v in sorted(by_page.items())]
