"""Parallel multi-receiver fleet simulation.

SONIC's evaluation sweeps loss/SNR grids over many receivers all tuned
to the *same* broadcast — the transmit side is one waveform, the receive
side is N independent radios, each behind its own channel realisation.
This module fans a shared broadcast waveform out to a fleet of simulated
receivers across a ``multiprocessing`` pool:

* the waveform lives once in a read-only ``shared_memory`` buffer, so a
  minutes-long broadcast is not pickled per worker;
* every receiver draws its channel impairment from
  ``derive_rng(master_seed, "fleet-rx", idx)``, which makes the fleet's
  loss maps identical whether it runs serially or on the pool; and
* each worker process builds one :class:`~repro.modem.modem.Modem` at
  start-up and reuses it for every receiver it simulates.

The per-receiver loss maps feed the existing workload/user-study layers
exactly like a single :meth:`Modem.receive` call would.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, replace
from multiprocessing import shared_memory

import numpy as np

from repro.modem.modem import Modem
from repro.radio.channels import AcousticChannel
from repro.radio.lossmodel import CalibrationStore, FrameLossModel, calibration_digest
from repro.sim.population import PopulationConfig, PopulationResult, run_population
from repro.util.rng import derive_rng

__all__ = [
    "FleetConfig",
    "ReceiverReport",
    "FleetResult",
    "run_fleet",
    "calibrate_loss_model",
]

IMPAIRMENTS = ("clean", "awgn", "acoustic")


@dataclass(frozen=True)
class FleetConfig:
    """One fleet run: who listens, through what channel, to which profile."""

    n_receivers: int = 8
    master_seed: int = 0
    profile: str = "sonic-ofdm"
    impairment: str = "awgn"  # one of IMPAIRMENTS
    frames_per_burst: int | None = 16
    # With chunk_samples set, each receiver runs the chunked dataflow
    # (channel stream + StreamingReceiver) in O(chunk) working memory.
    # Loss maps are bit-identical to the batch path by construction.
    chunk_samples: int | None = None
    # AWGN impairment: per-receiver SNR drawn uniformly from
    # [snr_db - snr_spread_db/2, snr_db + snr_spread_db/2].
    snr_db: float = 14.0
    snr_spread_db: float = 6.0
    # Acoustic impairment: per-receiver speaker-mic distance drawn the
    # same way around distance_m.
    distance_m: float = 0.9
    distance_spread_m: float = 0.4
    # Two-tier mode: with a PopulationConfig, the full-modem receivers
    # above become Tier 1 — a calibration sample whose decode outcomes
    # fit the RSSI/SNR -> frame-loss curve driving a Tier-2 statistical
    # population of population.n_receivers listeners.  The population
    # inherits this config's master_seed and profile.
    population: PopulationConfig | None = None
    # Directory for persisted calibration curves (None = refit per run).
    calibration_dir: str | None = None

    def __post_init__(self) -> None:
        if self.n_receivers < 1:
            raise ValueError("fleet needs at least one receiver")
        if self.impairment not in IMPAIRMENTS:
            raise ValueError(
                f"impairment must be one of {IMPAIRMENTS}, got {self.impairment!r}"
            )
        if self.chunk_samples is not None and self.chunk_samples < 1:
            raise ValueError("chunk_samples must be >= 1")
        if self.population is not None and self.impairment != "awgn":
            raise ValueError(
                "population mode calibrates its loss curve from the awgn "
                "fleet (audio-SNR domain); use impairment='awgn'"
            )


@dataclass(frozen=True)
class ReceiverReport:
    """Decode outcome of one receiver in the fleet."""

    receiver_id: int
    channel_param: float  # realised SNR (dB) or distance (m); 0 for clean
    n_frames: int  # frames detected
    n_ok: int  # frames that decoded and passed CRC
    loss_map: tuple[bool, ...]  # True = lost, per detected frame

    @property
    def frame_loss_rate(self) -> float:
        return 1.0 - self.n_ok / self.n_frames if self.n_frames else 1.0


@dataclass(frozen=True)
class FleetResult:
    """Aggregate outcome of :func:`run_fleet`."""

    reports: tuple[ReceiverReport, ...]
    processes: int
    elapsed_s: float
    # Two-tier mode only: the fitted (or store-loaded) loss curve and
    # the Tier-2 statistical population it drove.
    calibration: FrameLossModel | None = None
    calibration_cached: bool = False
    population: PopulationResult | None = None

    @property
    def n_receivers(self) -> int:
        return len(self.reports)

    @property
    def receivers_per_s(self) -> float:
        return self.n_receivers / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def mean_loss_rate(self) -> float:
        return float(np.mean([r.frame_loss_rate for r in self.reports]))

    def loss_maps(self) -> list[tuple[bool, ...]]:
        return [r.loss_map for r in self.reports]


def _draw_channel(
    config: FleetConfig, idx: int
) -> tuple[float, AcousticChannel | None, np.random.Generator]:
    """Receiver ``idx``'s channel realisation, shared by batch + stream.

    All randomness is keyed on ``(master_seed, "fleet-rx", idx)`` only,
    so the realisation does not depend on which process runs the
    receiver.  Returns ``(parameter, acoustic_channel, rng)``: the
    parameter is the realised SNR (dB), distance (m), or 0.0 for clean;
    the channel is built only for the acoustic impairment; the rng has
    consumed exactly the draws both paths share, so callers continue
    the stream identically (AWGN noise comes out of this same rng in
    the batch array draw and the chunked stream alike).
    """
    rng = derive_rng(config.master_seed, "fleet-rx", idx)
    if config.impairment == "clean":
        return 0.0, None, rng
    if config.impairment == "awgn":
        snr_db = config.snr_db + config.snr_spread_db * (rng.random() - 0.5)
        return snr_db, None, rng
    distance = config.distance_m + config.distance_spread_m * (rng.random() - 0.5)
    distance = max(0.0, distance)
    channel = AcousticChannel(seed=int(rng.integers(0, 2**31 - 1)))
    return distance, channel, rng


def _awgn_sigma(waveform: np.ndarray, snr_db: float) -> float:
    signal_power = float(np.mean(waveform**2)) if waveform.size else 0.0
    return float(np.sqrt(signal_power / (10.0 ** (snr_db / 10.0))))


def _impair(
    waveform: np.ndarray, config: FleetConfig, idx: int
) -> tuple[np.ndarray, float]:
    """Apply receiver ``idx``'s channel draw; returns (audio, parameter)."""
    param, channel, rng = _draw_channel(config, idx)
    if config.impairment == "clean":
        return waveform, param
    if config.impairment == "awgn":
        noisy = waveform + rng.normal(0.0, _awgn_sigma(waveform, param), waveform.size)
        return noisy, param
    return channel.transmit(waveform, param), param


def _impair_stream(
    waveform: np.ndarray, config: FleetConfig, idx: int
) -> tuple[object | None, float]:
    """Chunk-capable channel for receiver ``idx``; same draws as batch.

    The AWGN stream continues the very generator bit stream the batch
    path consumes in one whole-array draw, and the acoustic stream is
    pinned bit-exact against :meth:`AcousticChannel.transmit`, so the
    chunked fleet produces identical loss maps.
    """
    from repro.radio.streams import AwgnStream

    param, channel, rng = _draw_channel(config, idx)
    if config.impairment == "clean":
        return None, param
    if config.impairment == "awgn":
        return AwgnStream(rng, _awgn_sigma(waveform, param)), param
    signal_power = float(np.mean(waveform**2)) if waveform.size else 0.0
    return channel.stream(param, waveform.size, signal_power), param


def _receive_one(
    waveform: np.ndarray, modem: Modem, config: FleetConfig, idx: int
) -> ReceiverReport:
    if config.chunk_samples is not None:
        return _receive_one_streaming(waveform, modem, config, idx)
    audio, param = _impair(waveform, config, idx)
    frames = modem.receive(audio, frames_per_burst=config.frames_per_burst)
    loss_map = tuple(not f.ok for f in frames)
    return ReceiverReport(
        receiver_id=idx,
        channel_param=float(param),
        n_frames=len(frames),
        n_ok=int(sum(f.ok for f in frames)),
        loss_map=loss_map,
    )


def _receive_one_streaming(
    waveform: np.ndarray, modem: Modem, config: FleetConfig, idx: int
) -> ReceiverReport:
    """Chunked channel + receiver pipeline: O(chunk) working memory.

    The broadcast waveform itself lives once (shared memory on the
    pool); per-receiver state is one chunk in flight plus at most one
    burst buffered inside the streaming receiver.
    """
    from repro.modem.streaming import StreamingReceiver

    stream, param = _impair_stream(waveform, config, idx)
    receiver = StreamingReceiver(modem, frames_per_burst=config.frames_per_burst)
    frames = []
    step = config.chunk_samples
    for i in range(0, waveform.size, step):
        chunk = waveform[i : i + step]
        if stream is not None:
            chunk = stream.process(chunk)
        frames += receiver.push(chunk)
    if stream is not None:
        tail = stream.finish()
        if tail.size:
            frames += receiver.push(tail)
    frames += receiver.finish()
    loss_map = tuple(not f.ok for f in frames)
    return ReceiverReport(
        receiver_id=idx,
        channel_param=float(param),
        n_frames=len(frames),
        n_ok=int(sum(f.ok for f in frames)),
        loss_map=loss_map,
    )


# Per-worker state: attached shared waveform + a reusable Modem.  Plain
# module globals — each pool worker initialises its own copy.
_worker_wave: np.ndarray | None = None
_worker_modem: Modem | None = None
_worker_shm: shared_memory.SharedMemory | None = None


def _init_worker(shm_name: str, n_samples: int, profile: str) -> None:
    global _worker_wave, _worker_modem, _worker_shm
    _worker_shm = shared_memory.SharedMemory(name=shm_name)
    _worker_wave = np.ndarray(
        (n_samples,), dtype=np.float64, buffer=_worker_shm.buf
    )
    _worker_modem = Modem(profile)


def _run_worker(args: tuple[FleetConfig, int]) -> ReceiverReport:
    config, idx = args
    assert _worker_wave is not None and _worker_modem is not None
    return _receive_one(_worker_wave, _worker_modem, config, idx)


def _run_modem_fleet(
    waveform: np.ndarray, config: FleetConfig, processes: int | None
) -> tuple[tuple[ReceiverReport, ...], int, float]:
    """The full-modem (Tier-1) fleet: every receiver runs real DSP."""
    waveform = np.ascontiguousarray(waveform, dtype=np.float64)
    if processes is None:
        processes = min(config.n_receivers, os.cpu_count() or 1)
    # A pool of one (or a one-receiver fleet) is just the serial path:
    # the shared-memory segment is created lazily, only when a real
    # pool will attach to it — serial runs never pay the shm
    # setup/teardown.
    processes = max(1, min(int(processes), config.n_receivers))

    t0 = time.perf_counter()
    if processes == 1:
        modem = Modem(config.profile)
        reports = tuple(
            _receive_one(waveform, modem, config, idx)
            for idx in range(config.n_receivers)
        )
        return reports, 1, time.perf_counter() - t0

    shm = shared_memory.SharedMemory(create=True, size=max(waveform.nbytes, 1))
    try:
        shared = np.ndarray(waveform.shape, dtype=np.float64, buffer=shm.buf)
        shared[:] = waveform
        with multiprocessing.Pool(
            processes,
            initializer=_init_worker,
            initargs=(shm.name, waveform.size, config.profile),
        ) as pool:
            reports = tuple(
                pool.map(
                    _run_worker,
                    [(config, idx) for idx in range(config.n_receivers)],
                    chunksize=max(1, config.n_receivers // (4 * processes)),
                )
            )
    finally:
        shm.close()
        shm.unlink()
    return reports, processes, time.perf_counter() - t0


def _calibration_key(waveform: np.ndarray, config: FleetConfig) -> str:
    import hashlib

    wave_digest = hashlib.sha256(
        np.ascontiguousarray(waveform, dtype=np.float64).tobytes()
    ).hexdigest()[:16]
    return calibration_digest(
        config.profile,
        impairment=config.impairment,
        snr_db=config.snr_db,
        snr_spread_db=config.snr_spread_db,
        frames_per_burst=config.frames_per_burst,
        n_receivers=config.n_receivers,
        master_seed=config.master_seed,
        waveform=wave_digest,
    )


def calibrate_loss_model(
    reports: tuple[ReceiverReport, ...], seed: int = 0
) -> FrameLossModel:
    """Fit the RSSI/SNR -> frame-loss curve to Tier-1 fleet outcomes.

    Each AWGN fleet report contributes one sweep point: ``n_frames``
    decode attempts at its realised audio SNR (``channel_param``), of
    which ``n_frames - n_ok`` failed.
    """
    samples = [
        (r.channel_param, r.n_frames, r.n_frames - r.n_ok)
        for r in reports
        if r.n_frames > 0
    ]
    return FrameLossModel.fit_from_runs(samples, seed=seed)


def run_fleet(
    waveform: np.ndarray,
    config: FleetConfig = FleetConfig(),
    processes: int | None = None,
) -> FleetResult:
    """Simulate ``config.n_receivers`` receivers of one broadcast.

    ``processes=None`` picks ``min(n_receivers, cpu_count)``;
    ``processes<=1`` runs serially in this process (bit-identical loss
    maps either way, by construction of the per-receiver seeds).

    With ``config.population`` set, this becomes the two-tier run: the
    full-modem receivers above are Tier 1, their decode outcomes fit
    (or a persisted calibration provides) the frame-loss curve, and a
    Tier-2 statistical population of ``population.n_receivers``
    listeners runs through :func:`repro.sim.population.run_population`
    — all under the same master seed, bit-identical for any process or
    chunk partitioning.
    """
    t0 = time.perf_counter()
    reports, used, _ = _run_modem_fleet(waveform, config, processes)
    if config.population is None:
        return FleetResult(reports, used, time.perf_counter() - t0)

    store = CalibrationStore(config.calibration_dir)
    digest = _calibration_key(waveform, config)
    model = store.load(digest)
    cached = model is not None
    if model is None:
        model = calibrate_loss_model(reports, seed=config.master_seed)
        store.save(digest, model)

    pop_config = replace(
        config.population,
        master_seed=config.master_seed,
        profile=config.profile,
    )
    population = run_population(model, pop_config, processes=processes)
    return FleetResult(
        reports,
        used,
        time.perf_counter() - t0,
        calibration=model,
        calibration_cached=cached,
        population=population,
    )
