"""Real-passband OFDM modulation for the audio channel.

Symbols are synthesised directly at passband with an inverse real FFT:
the 92 active subcarriers occupy contiguous FFT bins inside the FM mono
band (roughly 7.2-11.5 kHz, centred near the paper's 9.2 kHz carrier).
Each frame begins with one known *training* symbol used for per-bin
channel estimation; a sparse comb of pilot subcarriers then tracks the
common phase error across the payload symbols.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.modem.constellation import Constellation
from repro.util.rng import derive_rng

__all__ = ["OfdmConfig", "OfdmPhy", "OfdmDemodResult", "strided_symbol_windows"]


def strided_symbol_windows(
    samples: np.ndarray, start: int, n: int, stride: int, width: int
) -> np.ndarray:
    """Zero-copy ``(n, width)`` read-only view of windows ``stride`` apart.

    The caller must guarantee ``start + (n - 1) * stride + width`` fits in
    ``samples`` — this is a raw stride trick, not a checked gather.  Used
    to hand every OFDM symbol window of a burst to one batched FFT.
    """
    base = np.ascontiguousarray(samples, dtype=np.float64)[start:]
    itemsize = base.strides[0]
    return np.lib.stride_tricks.as_strided(
        base,
        shape=(n, width),
        strides=(stride * itemsize, itemsize),
        writeable=False,
    )


@dataclass(frozen=True)
class OfdmConfig:
    """Static OFDM dimensioning shared by transmitter and receiver."""

    sample_rate: float = 48_000.0
    fft_size: int = 1024
    cp_len: int = 96
    first_bin: int = 154
    num_subcarriers: int = 92
    pilot_spacing: int = 8
    constellation_order: int = 16
    pn_seed: int = 0x50A1C  # shared pilot/training pseudo-noise seed

    def __post_init__(self) -> None:
        if self.fft_size & (self.fft_size - 1):
            raise ValueError("fft_size must be a power of two")
        if not 0 < self.cp_len < self.fft_size:
            raise ValueError("cp_len must be in (0, fft_size)")
        last_bin = self.first_bin + self.num_subcarriers - 1
        if self.first_bin < 1 or last_bin >= self.fft_size // 2:
            raise ValueError("active subcarriers fall outside the real spectrum")
        if self.pilot_spacing < 2:
            raise ValueError("pilot_spacing must be >= 2")

    @property
    def active_bins(self) -> np.ndarray:
        """FFT bin indices of all active (pilot + data) subcarriers."""
        return np.arange(self.first_bin, self.first_bin + self.num_subcarriers)

    @property
    def pilot_positions(self) -> np.ndarray:
        """Indices *within the active set* used as pilots."""
        return np.arange(0, self.num_subcarriers, self.pilot_spacing)

    @property
    def data_positions(self) -> np.ndarray:
        """Indices within the active set carrying payload symbols."""
        mask = np.ones(self.num_subcarriers, dtype=bool)
        mask[self.pilot_positions] = False
        return np.nonzero(mask)[0]

    @property
    def n_data_subcarriers(self) -> int:
        return int(self.data_positions.size)

    @property
    def symbol_len(self) -> int:
        """Samples per OFDM symbol including the cyclic prefix."""
        return self.fft_size + self.cp_len

    @property
    def symbol_duration_s(self) -> float:
        return self.symbol_len / self.sample_rate

    @property
    def bits_per_symbol(self) -> int:
        """Payload bits carried by one OFDM symbol."""
        order_bits = int(np.log2(self.constellation_order))
        return self.n_data_subcarriers * order_bits

    @property
    def center_frequency_hz(self) -> float:
        """Centre of the occupied band — near SONIC's 9.2 kHz carrier."""
        mid_bin = self.first_bin + (self.num_subcarriers - 1) / 2
        return mid_bin * self.sample_rate / self.fft_size

    @property
    def bandwidth_hz(self) -> float:
        return self.num_subcarriers * self.sample_rate / self.fft_size

    def raw_bit_rate(self) -> float:
        """Pre-FEC payload bit rate of back-to-back symbols."""
        return self.bits_per_symbol / self.symbol_duration_s


@dataclass
class OfdmDemodResult:
    """Equalised payload symbols plus channel-quality estimates."""

    data_symbols: np.ndarray  # (n_symbols, n_data_subcarriers) complex
    noise_var: float
    snr_db: float


class OfdmPhy:
    """Modulator/demodulator for one OFDM configuration."""

    #: target time-domain RMS of the emitted waveform
    TARGET_RMS = 0.125

    def __init__(self, config: OfdmConfig) -> None:
        self.config = config
        self.constellation = Constellation(config.constellation_order)
        rng = derive_rng(config.pn_seed, "ofdm-pn")
        qpsk = np.exp(1j * (np.pi / 4 + np.pi / 2 * rng.integers(0, 4, config.num_subcarriers)))
        self._training_symbols = qpsk
        pilot_vals = np.exp(
            1j * (np.pi / 4 + np.pi / 2 * rng.integers(0, 4, config.pilot_positions.size))
        )
        self._pilot_symbols = pilot_vals
        # Time-domain scale so unit-power bins hit TARGET_RMS.
        n_active = config.num_subcarriers
        natural_rms = np.sqrt(2.0 * n_active) / config.fft_size
        self._scale = self.TARGET_RMS / natural_rms

    # -- helpers -------------------------------------------------------------

    def _symbol_to_time(self, active_values: np.ndarray) -> np.ndarray:
        cfg = self.config
        spectrum = np.zeros(cfg.fft_size // 2 + 1, dtype=np.complex128)
        spectrum[cfg.active_bins] = active_values
        time_sig = np.fft.irfft(spectrum, cfg.fft_size) * self._scale
        return np.concatenate([time_sig[-cfg.cp_len :], time_sig])

    def n_symbols_for_bits(self, n_bits: int) -> int:
        """OFDM symbols needed to carry ``n_bits`` payload bits."""
        return -(-n_bits // self.config.bits_per_symbol)

    # -- modulation ------------------------------------------------------------

    def training_waveform(self) -> np.ndarray:
        """The known channel-estimation symbol that starts every frame."""
        return self._symbol_to_time(self._training_symbols)

    def modulate_bits(self, bits: np.ndarray) -> np.ndarray:
        """Map payload bits onto data subcarriers and synthesise audio.

        Bits are zero-padded to fill the final OFDM symbol.  The output
        does *not* include the training symbol; see
        :meth:`repro.modem.modem.Modem.transmit_frame` for full framing.
        """
        cfg = self.config
        bits = np.asarray(bits, dtype=np.uint8)
        per_sym = cfg.bits_per_symbol
        n_sym = self.n_symbols_for_bits(bits.size)
        padded = np.zeros(n_sym * per_sym, dtype=np.uint8)
        padded[: bits.size] = bits
        symbols = self.constellation.map_bits(padded).reshape(
            n_sym, cfg.n_data_subcarriers
        )
        # All symbols synthesised in one batched irFFT; cyclic prefixes are
        # prepended with a single concatenate.  Identical samples to the
        # per-symbol path, paid once per call instead of once per symbol.
        spectrum = np.zeros((n_sym, cfg.fft_size // 2 + 1), dtype=np.complex128)
        spectrum[:, cfg.active_bins[cfg.pilot_positions]] = self._pilot_symbols
        spectrum[:, cfg.active_bins[cfg.data_positions]] = symbols
        time_sig = np.fft.irfft(spectrum, cfg.fft_size, axis=1) * self._scale
        with_cp = np.concatenate([time_sig[:, -cfg.cp_len :], time_sig], axis=1)
        return with_cp.reshape(-1)

    # -- demodulation ------------------------------------------------------------

    def demodulate(
        self, samples: np.ndarray, start: int, n_symbols: int
    ) -> OfdmDemodResult:
        """Demodulate ``n_symbols`` payload symbols.

        ``start`` indexes the first sample of the *training* symbol's
        cyclic prefix.  Raises ``ValueError`` when the buffer is too short.
        """
        cfg = self.config
        samples = np.asarray(samples, dtype=np.float64)
        needed = start + (n_symbols + 1) * cfg.symbol_len
        if start < 0 or needed > samples.size:
            raise ValueError("sample buffer too short for requested symbols")

        # One zero-copy strided view + batched FFT covers the training
        # symbol and every payload symbol; neither a per-symbol Python
        # loop nor a fancy-indexed intermediate copy.
        windows = strided_symbol_windows(
            samples, start + cfg.cp_len, n_symbols + 1, cfg.symbol_len, cfg.fft_size
        )
        spectra = np.fft.rfft(windows, axis=1)[:, cfg.active_bins] / self._scale

        # Channel estimate from the training symbol.
        h = spectra[0] / self._training_symbols
        # Guard against dead bins (channel nulls) blowing up equalisation.
        h_mag = np.abs(h)
        floor = max(1e-6, 0.01 * float(np.median(h_mag)))
        h = np.where(h_mag < floor, floor, h)

        eq = spectra[1:] / h
        ref = self._pilot_symbols
        # Track the residual complex gain (phase *and* amplitude) so slow
        # channel flutter between training and payload symbols does not
        # skew the QAM decision grid.
        gains = eq[:, cfg.pilot_positions] @ np.conj(ref) / np.sum(np.abs(ref) ** 2)
        gains = np.where(np.abs(gains) < 1e-3, 1.0, gains)
        eq = eq / gains[:, None]
        grids = eq[:, cfg.data_positions]

        err = eq[:, cfg.pilot_positions] - ref
        noise_var = float(np.mean(np.abs(err) ** 2))
        noise_var = max(noise_var, 1e-9)
        snr_db = float(10 * np.log10(1.0 / noise_var)) if noise_var > 0 else 90.0
        return OfdmDemodResult(grids, noise_var, snr_db)
