"""Stateful chunk-at-a-time receiver: the streaming half of the modem.

A SONIC phone tunes into a *continuous* broadcast — it never holds the
whole capture in memory.  :class:`StreamingReceiver` accepts audio in
arbitrary chunks (a single sample up to the full capture), searches for
chirp preambles across chunk boundaries, buffers partial bursts until
they are decodable, and emits :class:`~repro.modem.modem.ReceivedFrame`
objects with *absolute* ``start_index`` accounting — bit-for-bit the
frames :meth:`Modem.receive` returns on the concatenated capture, for
any chunk size.  Memory stays O(burst + correlator block), not
O(broadcast).

Parity argument, in brief:

* preamble scores are chunk-invariant by construction (fixed absolute
  blocks in :class:`~repro.dsp.chirp.StreamingCorrelator`), and greedy
  peak selection decomposes across below-threshold gaps
  (:class:`~repro.dsp.chirp.StreamingPeakDetector`);
* a burst at peak *i* is decoded exactly when its ``limit`` — the next
  peak's position, or the capture end — is known, using the same
  arithmetic as the batch loop on the same sample values; in
  ``frames_per_burst`` mode it is decoded *early* once no future peak
  can change the outcome (every undetected position already lies beyond
  the samples the burst needs);
* FEC decoding is row-independent, so per-burst ``decode_batch`` calls
  equal the batch path's one whole-capture call.

:meth:`Modem.receive` is a thin wrapper over this class.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.dsp.chirp import StreamingCorrelator, StreamingPeakDetector

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.modem.modem import Modem, ReceivedFrame

__all__ = ["StreamingReceiver"]


class StreamingReceiver:
    """Decode a broadcast fed in arbitrary chunks, in bounded memory.

    >>> modem = Modem()
    >>> rx = StreamingReceiver(modem, frames_per_burst=1)
    >>> wave = modem.transmit_frame(bytes(100))
    >>> frames = [f for c in np.array_split(wave, 7) for f in rx.push(c)]
    >>> frames += rx.finish()
    """

    def __init__(
        self,
        modem: "Modem",
        sync_threshold: float = 0.35,
        frames_per_burst: int | None = None,
    ) -> None:
        self._modem = modem
        self._frames_per_burst = frames_per_burst
        self._correlator = StreamingCorrelator(modem._preamble)
        self._detector = StreamingPeakDetector(
            sync_threshold, modem._preamble.size
        )
        self._buffer = np.zeros(0)
        self._buffer_start = 0  # absolute index of _buffer[0]
        self._peaks: deque[tuple[int, float]] = deque()  # finalised, undecoded
        self._finished = False
        self.total_pushed = 0
        self.frames_decoded = 0
        self.frames_ok = 0
        self.max_buffer_samples = 0

    # -- feeding ----------------------------------------------------------

    def push(self, chunk: np.ndarray) -> "list[ReceivedFrame]":
        """Feed the next audio chunk; returns frames decodable so far."""
        if self._finished:
            raise RuntimeError("receiver already finished")
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.size:
            self.total_pushed += chunk.size
            self._buffer = (
                np.concatenate([self._buffer, chunk]) if self._buffer.size
                else chunk.copy()
            )
        self._peaks.extend(self._detector.push(*self._correlator.push(chunk)))
        frames = self._drain(eos=False)
        self._trim()
        self.max_buffer_samples = max(self.max_buffer_samples, self._buffer.size)
        return frames

    def finish(self) -> "list[ReceivedFrame]":
        """Signal end of capture; returns the remaining frames."""
        if self._finished:
            return []
        self._finished = True
        self._peaks.extend(self._detector.push(*self._correlator.flush()))
        self._peaks.extend(self._detector.finish())
        self.max_buffer_samples = max(self.max_buffer_samples, self._buffer.size)
        frames = self._drain(eos=True)
        self._buffer = np.zeros(0)
        self._buffer_start = self.total_pushed
        return frames

    @property
    def buffered_samples(self) -> int:
        return self._buffer.size

    # -- decoding ----------------------------------------------------------

    def _drain(self, eos: bool) -> "list[ReceivedFrame]":
        out: "list[ReceivedFrame]" = []
        while self._peaks:
            pos, score = self._peaks[0]
            if len(self._peaks) >= 2:
                limit = self._peaks[1][0]
            elif eos:
                limit = self.total_pushed
            else:
                limit = self._early_limit(pos)
                if limit is None:
                    break  # outcome could still change — keep buffering
            burst = self._decode_burst(pos, score, limit)
            self.frames_decoded += len(burst)
            self.frames_ok += sum(1 for f in burst if f.ok)
            out.extend(burst)
            self._peaks.popleft()
        return out

    def _early_limit(self, pos: int) -> int | None:
        """Mid-stream decode point for a known-size burst.

        With ``frames_per_burst`` set, the batch loop decodes exactly
        ``frames_per_burst`` frames whenever the next peak leaves room
        for them.  Once every position that could still produce a peak
        (pending detector candidates, then unscored positions) lies at
        or beyond the burst's own sample needs — and those samples are
        buffered — the batch outcome is fixed and the burst can decode
        now, one burst of latency behind the transmitter.
        """
        fpb = self._frames_per_burst
        if fpb is None:
            return None
        modem = self._modem
        offset = modem._preamble.size + modem.profile.guard_samples
        sym_len = modem.profile.ofdm.symbol_len
        needed = pos + offset + (fpb * modem._n_payload_symbols + 1) * sym_len
        pending = self._detector.pending_min
        next_peak_lb = pending if pending is not None else self._detector.watermark
        if next_peak_lb >= needed and self.total_pushed >= needed:
            return needed
        return None

    def _decode_burst(
        self, pos: int, score: float, limit: int
    ) -> "list[ReceivedFrame]":
        """Replicates one iteration of the batch receive loop exactly."""
        from repro.modem.modem import ReceivedFrame

        modem = self._modem
        offset = modem._preamble.size + modem.profile.guard_samples
        sym_len = modem.profile.ofdm.symbol_len
        per_frame = modem._n_payload_symbols
        frame_start = pos + offset
        max_symbols = (limit - frame_start) // sym_len - 1
        if max_symbols < per_frame:
            return [ReceivedFrame(None, pos, -np.inf, score)]
        rel_start = frame_start - self._buffer_start
        if self._frames_per_burst is not None:
            n_frames = min(self._frames_per_burst, max_symbols // per_frame)
        else:
            active = modem._count_active_symbols(
                self._buffer, rel_start, max_symbols
            )
            n_frames = max(1, int(round(active / per_frame))) if active else 1
            n_frames = min(n_frames, max_symbols // per_frame)
        try:
            demod = modem.phy.demodulate(
                self._buffer, rel_start, n_frames * per_frame
            )
        except ValueError:
            return [ReceivedFrame(None, pos, -np.inf, score)]
        soft = modem.phy.constellation.demap_soft(
            demod.data_symbols.reshape(-1), demod.noise_var
        ).reshape(n_frames, -1)
        payloads = modem.codec.decode_batch(soft)
        frames: "list[ReceivedFrame]" = []
        for j, payload in enumerate(payloads):
            frame_index = (
                pos if j == 0 else frame_start + (1 + j * per_frame) * sym_len
            )
            frames.append(ReceivedFrame(payload, frame_index, demod.snr_db, score))
        return frames

    # -- memory ----------------------------------------------------------

    def _trim(self) -> None:
        """Discard buffered samples no future decode can touch."""
        if self._peaks:
            keep_from = self._peaks[0][0]
        else:
            pending = self._detector.pending_min
            keep_from = (
                pending if pending is not None else self._detector.watermark
            )
        cut = keep_from - self._buffer_start
        if cut > 0:
            self._buffer = self._buffer[cut:]
            self._buffer_start = keep_from
