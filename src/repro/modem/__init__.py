"""Acoustic OFDM modem (the Quiet-library equivalent).

The modem converts byte frames into audio waveforms and back.  A physical
frame is laid out as::

    [chirp preamble][known training symbol][OFDM payload symbols ...]

with the payload protected by the FEC stack from :mod:`repro.fec`
(CRC-32 + outer Reed-Solomon + interleaving + inner convolutional code),
mirroring the Quiet profile SONIC derives from ``audible-7k-channel``:
OFDM with 92 subcarriers at ~10 kbps.
"""

from repro.modem.constellation import Constellation
from repro.modem.ofdm import OfdmConfig, OfdmPhy
from repro.modem.frame import FrameCodec, FecConfig
from repro.modem.profiles import ModemProfile, get_profile, list_profiles
from repro.modem.modem import Modem, ReceivedFrame
from repro.modem.streaming import StreamingReceiver
from repro.modem.message import MessageStreamingReceiver, PreambleSync
from repro.modem.fsk import FskModem, FskConfig
from repro.modem.gmsk import GmskModem, GmskConfig
from repro.modem.audioqr import AudioQrModem, AudioQrConfig

__all__ = [
    "Constellation",
    "OfdmConfig",
    "OfdmPhy",
    "FrameCodec",
    "FecConfig",
    "ModemProfile",
    "get_profile",
    "list_profiles",
    "Modem",
    "ReceivedFrame",
    "StreamingReceiver",
    "MessageStreamingReceiver",
    "PreambleSync",
    "FskModem",
    "FskConfig",
    "GmskModem",
    "GmskConfig",
    "AudioQrModem",
    "AudioQrConfig",
]
