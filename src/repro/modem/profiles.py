"""Named modem profiles.

The paper creates a new Quiet transmission profile "inspired by their
audible-7k-channel" using OFDM with 92 subcarriers reaching 10 kbps.
``sonic-ofdm`` reproduces that profile; the others are the comparison
points used in Section 2 and the multi-rate projections of Figure 4(c).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.modem.frame import FecConfig
from repro.modem.ofdm import OfdmConfig

__all__ = ["ModemProfile", "get_profile", "list_profiles"]


@dataclass(frozen=True)
class ModemProfile:
    """Everything both ends must agree on to interoperate."""

    name: str
    ofdm: OfdmConfig
    fec: FecConfig
    preamble_f0_hz: float = 2_000.0
    preamble_f1_hz: float = 12_000.0
    preamble_duration_s: float = 0.040
    guard_samples: int = 256

    def raw_bit_rate(self) -> float:
        """Pre-FEC PHY bit rate (the figure Quiet profiles advertise)."""
        return self.ofdm.raw_bit_rate()

    def net_bit_rate(self) -> float:
        """Payload goodput of back-to-back frames, all overheads included."""
        payload_bits = self.fec.payload_size * 8
        from repro.modem.frame import FrameCodec  # local to avoid cycle at import

        codec = FrameCodec(self.fec)
        n_sym = -(-codec.frame_bits // self.ofdm.bits_per_symbol)
        frame_samples = (
            int(self.preamble_duration_s * self.ofdm.sample_rate)
            + self.guard_samples
            + (n_sym + 1) * self.ofdm.symbol_len
        )
        return payload_bits / (frame_samples / self.ofdm.sample_rate)


_BASE_OFDM = OfdmConfig()  # 92 subcarriers, 16-QAM, centred near 9.2 kHz

_PROFILES: dict[str, ModemProfile] = {
    # The paper's profile: 92 subcarriers, ~10 kbps raw PHY rate.
    "sonic-ofdm": ModemProfile(
        name="sonic-ofdm",
        ofdm=_BASE_OFDM,
        fec=FecConfig(payload_size=100, rs_nsym=16, conv="v29"),
    ),
    # Higher-order constellation for the cable / internal-tuner path.
    "sonic-ofdm-fast": ModemProfile(
        name="sonic-ofdm-fast",
        ofdm=replace(_BASE_OFDM, constellation_order=64),
        fec=FecConfig(payload_size=100, rs_nsym=16, conv="v29"),
    ),
    # Quiet's original audible-7k-channel flavour: QPSK, more robust.
    "audible-7k": ModemProfile(
        name="audible-7k",
        ofdm=replace(
            _BASE_OFDM, constellation_order=4, first_bin=96, num_subcarriers=64
        ),
        fec=FecConfig(payload_size=100, rs_nsym=16, conv="v27"),
    ),
    # Ablation profiles (Section 3.3 design choices).
    "sonic-ofdm-no-rs": ModemProfile(
        name="sonic-ofdm-no-rs",
        ofdm=_BASE_OFDM,
        fec=FecConfig(payload_size=100, rs_nsym=0, conv="v29"),
    ),
    "sonic-ofdm-no-conv": ModemProfile(
        name="sonic-ofdm-no-conv",
        ofdm=_BASE_OFDM,
        fec=FecConfig(payload_size=100, rs_nsym=16, conv="none"),
    ),
    "sonic-ofdm-no-fec": ModemProfile(
        name="sonic-ofdm-no-fec",
        ofdm=_BASE_OFDM,
        fec=FecConfig(payload_size=100, rs_nsym=0, conv="none"),
    ),
}


def get_profile(name: str) -> ModemProfile:
    """Look up a profile by name; raises ``KeyError`` with suggestions."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; available: {', '.join(sorted(_PROFILES))}"
        ) from None


def list_profiles() -> list[str]:
    """Names of all built-in profiles."""
    return sorted(_PROFILES)
