"""Frame-level FEC pipeline: bytes <-> protected bit stream.

This layer reproduces the error-control stack SONIC configures in Quiet
(Section 3.3 of the paper): a CRC-32 checksum over the payload, an outer
Reed-Solomon code (``rs8``), and an inner convolutional code decoded with
soft-decision Viterbi (``v29``), with a byte interleaver between the two
codes so Viterbi error bursts spread across RS blocks.

The codec is dimensioned for a *fixed* payload size (SONIC uses 100-byte
frames), so both ends know every length statically and no PHY-layer
length header is required.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fec import (
    BlockInterleaver,
    CONV_V27,
    CONV_V29,
    ConvolutionalCode,
    RSDecodeError,
    ReedSolomon,
    crc32_ieee,
)
from repro.util.bits import bits_to_bytes, bytes_to_bits
from repro.util.rng import derive_rng

__all__ = ["FecConfig", "FrameCodec", "FrameDecodeError"]

_CONV_CODES: dict[str, ConvolutionalCode | None] = {
    "v27": CONV_V27,
    "v29": CONV_V29,
    "none": None,
}


class FrameDecodeError(Exception):
    """The frame could not be recovered (RS failure or CRC mismatch)."""


@dataclass(frozen=True)
class FecConfig:
    """Error-control parameters for the frame codec.

    The defaults mirror SONIC's Quiet profile: CRC-32 + RS outer code +
    K=9 rate-1/2 convolutional inner code.
    """

    payload_size: int = 100
    rs_nsym: int = 16
    rs_max_block: int = 128
    conv: str = "v29"
    interleave: bool = True
    scramble: bool = True
    #: With no inner code, soft-decision confidence survives to the RS
    #: layer: flag the least-confident bytes as erasures, doubling the
    #: correctable count (2*errors + erasures <= nsym).
    rs_erasures: bool = False

    def __post_init__(self) -> None:
        if self.payload_size < 1:
            raise ValueError("payload_size must be positive")
        if self.conv not in _CONV_CODES:
            raise ValueError(f"conv must be one of {sorted(_CONV_CODES)}")
        if self.rs_nsym and not 2 <= self.rs_nsym <= 254:
            raise ValueError("rs_nsym must be 0 (disabled) or in [2, 254]")
        if self.rs_nsym and self.rs_max_block + self.rs_nsym > 255:
            raise ValueError("rs_max_block + rs_nsym must be <= 255")


class FrameCodec:
    """Fixed-size frame encoder/decoder implementing the FEC pipeline."""

    CRC_LEN = 4

    def __init__(self, config: FecConfig = FecConfig()) -> None:
        self.config = config
        body_len = config.payload_size + self.CRC_LEN
        if config.rs_nsym:
            self._rs = ReedSolomon(config.rs_nsym)
            self._n_blocks = -(-body_len // config.rs_max_block)
            self._block_data = -(-body_len // self._n_blocks)
            self._padded_body = self._block_data * self._n_blocks
            coded_block = self._block_data + config.rs_nsym
            self._coded_bytes = coded_block * self._n_blocks
            self._interleaver = (
                BlockInterleaver(self._n_blocks, coded_block)
                if config.interleave and self._n_blocks > 1
                else None
            )
        else:
            self._rs = None
            self._n_blocks = 0
            self._padded_body = body_len
            self._coded_bytes = body_len
            self._interleaver = None
        self._conv = _CONV_CODES[config.conv]
        self._info_bits = self._coded_bytes * 8
        if self._conv is not None:
            self._frame_bits = self._conv.coded_length(self._info_bits)
        else:
            self._frame_bits = self._info_bits
        pn_rng = derive_rng(0xD15EA5E, "scrambler", config.payload_size)
        self._pn = pn_rng.integers(0, 2, self._info_bits).astype(np.uint8)

    @property
    def frame_bits(self) -> int:
        """Number of coded bits every frame occupies on the PHY."""
        return self._frame_bits

    @property
    def overhead_ratio(self) -> float:
        """Coded bits per payload bit (FEC + CRC expansion factor)."""
        return self._frame_bits / (self.config.payload_size * 8)

    # -- encode ------------------------------------------------------------

    def encode(self, payload: bytes) -> np.ndarray:
        """Protect ``payload`` and return the coded bit vector."""
        cfg = self.config
        if len(payload) != cfg.payload_size:
            raise ValueError(
                f"payload must be exactly {cfg.payload_size} bytes, got {len(payload)}"
            )
        crc = crc32_ieee(payload)
        body = payload + crc.to_bytes(4, "big")
        body = body + bytes(self._padded_body - len(body))

        if self._rs is not None:
            blocks = [
                self._rs.encode(body[i * self._block_data : (i + 1) * self._block_data])
                for i in range(self._n_blocks)
            ]
            coded = np.frombuffer(b"".join(blocks), dtype=np.uint8)
            if self._interleaver is not None:
                coded = self._interleaver.interleave(coded)
            stream = coded.tobytes()
        else:
            stream = body

        bits = bytes_to_bits(stream)
        if self.config.scramble:
            bits = bits ^ self._pn
        if self._conv is not None:
            bits = self._conv.encode(bits)
        return bits

    def encode_batch(self, payloads: list[bytes] | np.ndarray) -> np.ndarray:
        """Protect many payloads at once: ``(n_frames, frame_bits)`` bits.

        Bit-identical to calling :meth:`encode` per payload, but the RS
        blocks of every frame are encoded in one :meth:`~repro.fec.\
ReedSolomon.encode_blocks` call, interleaving is one reshape, and the
        convolutional code runs one batched pass — so the Python-level
        cost no longer scales with the frame count.
        """
        cfg = self.config
        if isinstance(payloads, np.ndarray):
            arr = np.atleast_2d(np.asarray(payloads, dtype=np.uint8))
        else:
            if not payloads:
                raise ValueError("batch must contain at least one payload")
            for p in payloads:
                if len(p) != cfg.payload_size:
                    raise ValueError(
                        f"payload must be exactly {cfg.payload_size} bytes, "
                        f"got {len(p)}"
                    )
            arr = np.frombuffer(b"".join(payloads), dtype=np.uint8).reshape(
                len(payloads), cfg.payload_size
            )
        if arr.shape[1] != cfg.payload_size:
            raise ValueError(
                f"payload must be exactly {cfg.payload_size} bytes, "
                f"got {arr.shape[1]}"
            )
        n = arr.shape[0]

        body = np.zeros((n, self._padded_body), dtype=np.uint8)
        body[:, : cfg.payload_size] = arr
        for i in range(n):
            crc = crc32_ieee(arr[i].tobytes())
            body[i, cfg.payload_size : cfg.payload_size + 4] = np.frombuffer(
                crc.to_bytes(4, "big"), dtype=np.uint8
            )

        if self._rs is not None:
            blocks = body.reshape(n * self._n_blocks, self._block_data)
            coded = self._rs.encode_blocks(blocks).reshape(n, self._coded_bytes)
            if self._interleaver is not None:
                coded = self._interleaver.interleave_many(coded)
            stream = coded
        else:
            stream = body

        bits = np.unpackbits(stream, axis=1)
        if cfg.scramble:
            bits = bits ^ self._pn[None, :]
        if self._conv is not None:
            bits = self._conv.encode_batch(bits)
        return bits

    # -- decode ------------------------------------------------------------

    def decode(self, soft_bits: np.ndarray) -> bytes:
        """Recover the payload from soft bits; raises on unrecoverable frames.

        ``soft_bits`` is the bipolar soft-decision stream from the
        demapper (positive favours bit 0).  Hard bits can be passed as
        ``1.0 - 2.0 * bits``.
        """
        soft = np.asarray(soft_bits, dtype=np.float64)
        if soft.size < self._frame_bits:
            raise ValueError(
                f"expected {self._frame_bits} soft bits, got {soft.size}"
            )
        soft = soft[: self._frame_bits]

        byte_confidence: np.ndarray | None = None
        if self._conv is not None:
            bits = self._conv.decode_soft(soft, self._info_bits)
        else:
            bits = (soft < 0).astype(np.uint8)
            if self.config.rs_erasures and self._rs is not None:
                # Confidence of a byte = its weakest bit's magnitude.
                byte_confidence = np.abs(soft).reshape(-1, 8).min(axis=1)
        if self.config.scramble:
            bits = bits ^ self._pn
        stream = np.frombuffer(bits_to_bytes(bits), dtype=np.uint8)

        if self._rs is not None:
            if self._interleaver is not None:
                stream = self._interleaver.deinterleave(stream)
                if byte_confidence is not None:
                    byte_confidence = self._interleaver.deinterleave(byte_confidence)
            raw = stream.tobytes()
            coded_block = self._block_data + self.config.rs_nsym
            parts = []
            for i in range(self._n_blocks):
                block = raw[i * coded_block : (i + 1) * coded_block]
                erasures = None
                if byte_confidence is not None:
                    conf = byte_confidence[i * coded_block : (i + 1) * coded_block]
                    # Flag up to nsym - 2 weakest bytes so a couple of
                    # undetected hard errors remain correctable.
                    budget = max(0, self.config.rs_nsym - 2)
                    order = np.argsort(conf)[:budget]
                    threshold = float(np.median(conf)) * 0.5
                    erasures = [int(p) for p in order if conf[p] < threshold]
                try:
                    parts.append(self._rs.decode(block, erase_pos=erasures))
                except RSDecodeError as exc:
                    raise FrameDecodeError(f"RS block {i} unrecoverable") from exc
            body = b"".join(parts)
        else:
            body = stream.tobytes()

        payload = body[: self.config.payload_size]
        stored = int.from_bytes(
            body[self.config.payload_size : self.config.payload_size + 4], "big"
        )
        if crc32_ieee(payload) != stored:
            raise FrameDecodeError("CRC-32 mismatch")
        return payload

    def decode_batch(self, soft_bits: np.ndarray) -> list[bytes | None]:
        """Recover many frames from a ``(n_frames, frame_bits)`` soft stack.

        Unrecoverable frames come back as ``None`` instead of raising, so
        one bad frame does not cost the rest of the burst.  Decode
        decisions are identical to :meth:`decode` per row: the batched
        Viterbi, deinterleaver, and RS block decoder produce the same bits
        as their scalar counterparts.
        """
        soft = np.atleast_2d(np.asarray(soft_bits, dtype=np.float64))
        if soft.shape[1] < self._frame_bits:
            raise ValueError(
                f"expected {self._frame_bits} soft bits per frame, "
                f"got {soft.shape[1]}"
            )
        soft = soft[:, : self._frame_bits]
        n = soft.shape[0]

        byte_confidence: np.ndarray | None = None
        if self._conv is not None:
            bits = self._conv.decode_soft_batch(soft, self._info_bits)
        else:
            bits = (soft < 0).astype(np.uint8)
            if self.config.rs_erasures and self._rs is not None:
                # Confidence of a byte = its weakest bit's magnitude.
                byte_confidence = np.abs(soft).reshape(n, -1, 8).min(axis=2)
        if self.config.scramble:
            bits = bits ^ self._pn[None, :]
        stream = np.packbits(bits, axis=1)

        if self._rs is not None:
            if self._interleaver is not None:
                stream = self._interleaver.deinterleave_many(stream)
                if byte_confidence is not None:
                    byte_confidence = self._interleaver.deinterleave_many(
                        byte_confidence
                    )
            coded_block = self._block_data + self.config.rs_nsym
            blocks = stream.reshape(n * self._n_blocks, coded_block)
            erase_lists: list[list[int] | None] | None = None
            if byte_confidence is not None:
                conf_blocks = byte_confidence.reshape(n * self._n_blocks, coded_block)
                budget = max(0, self.config.rs_nsym - 2)
                erase_lists = []
                for conf in conf_blocks:
                    order = np.argsort(conf)[:budget]
                    threshold = float(np.median(conf)) * 0.5
                    erase_lists.append([int(p) for p in order if conf[p] < threshold])
            report = self._rs.decode_blocks(blocks, erase_lists)
            block_ok = report.ok.reshape(n, self._n_blocks)
            bodies = report.data.reshape(n, self._padded_body)
            frame_ok = block_ok.all(axis=1)
        else:
            bodies = stream
            frame_ok = np.ones(n, dtype=bool)

        ps = self.config.payload_size
        out: list[bytes | None] = []
        for i in range(n):
            if not frame_ok[i]:
                out.append(None)
                continue
            payload = bodies[i, :ps].tobytes()
            stored = int.from_bytes(bodies[i, ps : ps + 4].tobytes(), "big")
            out.append(payload if crc32_ieee(payload) == stored else None)
        return out
