"""Gray-coded PSK/QAM constellations with hard and soft demapping.

Square QAM constellations are built as two independent Gray-coded PAM
axes, which is what makes per-axis max-log LLR computation exact and
cheap — the property the soft-decision Viterbi input relies on.  Orders
up to 1024-QAM are supported (Quiet advertises 1024-QAM for its
cable-connected profiles).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Constellation"]

_SUPPORTED_ORDERS = (2, 4, 16, 64, 256, 1024)


def _gray(i: np.ndarray) -> np.ndarray:
    return i ^ (i >> 1)


class Constellation:
    """A unit-average-power Gray-mapped constellation.

    Parameters
    ----------
    order:
        Number of constellation points; one of 2 (BPSK), 4 (QPSK), 16,
        64, 256 or 1024 (square QAM).
    """

    def __init__(self, order: int) -> None:
        if order not in _SUPPORTED_ORDERS:
            raise ValueError(f"order must be one of {_SUPPORTED_ORDERS}, got {order}")
        self.order = order
        self.bits_per_symbol = int(np.log2(order))
        if order == 2:
            self._levels = np.array([1.0, -1.0])  # bit 0 -> +1
            self._bits_i = 1
            self._bits_q = 0
        else:
            self._bits_i = self.bits_per_symbol // 2
            self._bits_q = self.bits_per_symbol - self._bits_i
            self._levels_i = self._pam_levels(1 << self._bits_i)
            self._levels_q = self._pam_levels(1 << self._bits_q)
        self._points = self._build_points()
        # Normalise to unit average power.
        scale = np.sqrt(np.mean(np.abs(self._points) ** 2))
        self._scale = float(scale)
        self._points = self._points / scale

    @staticmethod
    def _pam_levels(n_levels: int) -> np.ndarray:
        """Amplitude per *bit pattern* for a Gray-coded PAM axis."""
        idx = np.arange(n_levels)
        amplitudes = 2.0 * idx - (n_levels - 1)
        levels = np.zeros(n_levels)
        levels[_gray(idx)] = amplitudes  # bit pattern g sits at amplitude of its index
        return levels

    def _build_points(self) -> np.ndarray:
        if self.order == 2:
            return self._levels.astype(np.complex128)
        points = np.zeros(self.order, dtype=np.complex128)
        for sym in range(self.order):
            bits_i = sym >> self._bits_q
            bits_q = sym & ((1 << self._bits_q) - 1)
            points[sym] = self._levels_i[bits_i] + 1j * self._levels_q[bits_q]
        return points

    @property
    def points(self) -> np.ndarray:
        """All constellation points, indexed by MSB-first bit pattern."""
        return self._points.copy()

    # -- mapping ---------------------------------------------------------------

    def map_bits(self, bits: np.ndarray) -> np.ndarray:
        """Map a bit vector (multiple of bits_per_symbol) to symbols."""
        bits = np.asarray(bits, dtype=np.uint8)
        m = self.bits_per_symbol
        if bits.size % m != 0:
            raise ValueError(f"bit count {bits.size} not a multiple of {m}")
        groups = bits.reshape(-1, m)
        weights = 1 << np.arange(m - 1, -1, -1)
        symbols = groups @ weights
        return self._points[symbols]

    # -- demapping ---------------------------------------------------------------

    def demap_hard(self, symbols: np.ndarray) -> np.ndarray:
        """Nearest-point hard decision back to bits."""
        symbols = np.asarray(symbols, dtype=np.complex128)
        dist = np.abs(symbols[:, None] - self._points[None, :])
        nearest = np.argmin(dist, axis=1)
        m = self.bits_per_symbol
        out = np.zeros((symbols.size, m), dtype=np.uint8)
        for k in range(m):
            out[:, k] = (nearest >> (m - 1 - k)) & 1
        return out.reshape(-1)

    def demap_soft(self, symbols: np.ndarray, noise_var: float = 1.0) -> np.ndarray:
        """Max-log LLR soft demapping.

        Returns one bipolar value per bit: positive favours bit 0,
        negative favours bit 1, scaled by 1/noise_var.  Suitable directly
        as :meth:`repro.fec.ConvolutionalCode.decode_soft` input.
        """
        symbols = np.asarray(symbols, dtype=np.complex128)
        if noise_var <= 0:
            raise ValueError("noise variance must be positive")
        if self.order == 2:
            return (2.0 * symbols.real / noise_var).astype(np.float64)

        scale = self._scale
        soft_i = self._axis_llr(symbols.real * scale, self._levels_i, self._bits_i)
        soft_q = self._axis_llr(symbols.imag * scale, self._levels_q, self._bits_q)
        out = np.concatenate([soft_i, soft_q], axis=1) / (noise_var * scale**2)
        return out.reshape(-1)

    @staticmethod
    def _axis_llr(y: np.ndarray, levels: np.ndarray, n_bits: int) -> np.ndarray:
        """Per-axis max-log LLRs for a Gray PAM axis.

        ``levels[pattern]`` is the amplitude of each bit pattern; for each
        bit position the LLR is min-distance(bit=1) - min-distance(bit=0).
        """
        n_levels = levels.size
        dist = (y[:, None] - levels[None, :]) ** 2  # (N, L)
        patterns = np.arange(n_levels)
        out = np.zeros((y.size, n_bits))
        for k in range(n_bits):
            bit = (patterns >> (n_bits - 1 - k)) & 1
            d0 = np.min(dist[:, bit == 0], axis=1)
            d1 = np.min(dist[:, bit == 1], axis=1)
            out[:, k] = d1 - d0
        return out
