"""High-level modem API: byte frames <-> audio waveforms.

A transmitted frame is laid out as::

    [chirp preamble][guard][training symbol][payload OFDM symbols]

The receiver finds preambles by matched filtering, demodulates each frame
that follows, runs the FEC pipeline, and reports per-frame outcomes.  A
frame whose FEC fails is reported with ``payload=None`` — that is what
the paper counts as a *lost frame*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.chirp import linear_chirp
from repro.modem.frame import FrameCodec
from repro.modem.ofdm import OfdmPhy, strided_symbol_windows
from repro.modem.profiles import ModemProfile, get_profile

__all__ = ["Modem", "ReceivedFrame"]


@dataclass(frozen=True)
class ReceivedFrame:
    """One detected frame and its decode outcome."""

    payload: bytes | None
    start_index: int
    snr_db: float
    sync_score: float

    @property
    def ok(self) -> bool:
        """True when the frame decoded and passed its CRC."""
        return self.payload is not None


class Modem:
    """Symmetric transmitter/receiver for one profile.

    >>> modem = Modem()
    >>> wave = modem.transmit_frame(bytes(100))
    >>> [frame.ok for frame in modem.receive(wave)]
    [True]
    """

    def __init__(self, profile: ModemProfile | str = "sonic-ofdm") -> None:
        if isinstance(profile, str):
            profile = get_profile(profile)
        self.profile = profile
        self.phy = OfdmPhy(profile.ofdm)
        self.codec = FrameCodec(profile.fec)
        self._preamble = linear_chirp(
            profile.preamble_f0_hz,
            profile.preamble_f1_hz,
            profile.preamble_duration_s,
            profile.ofdm.sample_rate,
            amplitude=2.0 * OfdmPhy.TARGET_RMS,
        )
        self._n_payload_symbols = self.phy.n_symbols_for_bits(self.codec.frame_bits)

    @property
    def frame_payload_size(self) -> int:
        """Payload bytes carried per frame (100 for SONIC)."""
        return self.profile.fec.payload_size

    @property
    def frame_samples(self) -> int:
        """Audio samples occupied by one complete frame."""
        return (
            self._preamble.size
            + self.profile.guard_samples
            + (self._n_payload_symbols + 1) * self.profile.ofdm.symbol_len
        )

    @property
    def frame_duration_s(self) -> float:
        return self.frame_samples / self.profile.ofdm.sample_rate

    # -- transmit ----------------------------------------------------------

    def transmit_frame(self, payload: bytes) -> np.ndarray:
        """Encode one payload into an audio waveform."""
        return self.transmit_burst([payload])

    def transmit_burst(self, payloads: list[bytes]) -> np.ndarray:
        """Encode several payloads behind a *single* preamble + training.

        Burst mode amortises the synchronisation overhead: each frame is
        still independently FEC-protected and CRC-gated, so losses remain
        per-frame, but the preamble cost is paid once per burst.
        """
        if not payloads:
            raise ValueError("burst must contain at least one payload")
        guard = np.zeros(self.profile.guard_samples)
        # Batch path: every frame's FEC runs in one stacked pass, and the
        # per-frame bit vectors are padded to whole OFDM symbols so a
        # single modulate_bits call emits the same samples as per-frame
        # modulation would.
        bits = self.codec.encode_batch(payloads)
        per_sym = self.profile.ofdm.bits_per_symbol
        padded = np.zeros(
            (len(payloads), self._n_payload_symbols * per_sym), dtype=np.uint8
        )
        padded[:, : bits.shape[1]] = bits
        return np.concatenate(
            [
                self._preamble,
                guard,
                self.phy.training_waveform(),
                self.phy.modulate_bits(padded.reshape(-1)),
            ]
        )

    def transmit_frames(
        self, payloads: list[bytes], gap_s: float = 0.01
    ) -> np.ndarray:
        """Concatenate individually-preambled frames with silent gaps."""
        if not payloads:
            return np.zeros(0)
        gap = np.zeros(int(gap_s * self.profile.ofdm.sample_rate))
        parts: list[np.ndarray] = []
        for i, payload in enumerate(payloads):
            if i:
                parts.append(gap)
            parts.append(self.transmit_frame(payload))
        return np.concatenate(parts)

    def burst_samples(self, n_frames: int) -> int:
        """Audio samples occupied by an ``n_frames`` burst."""
        return (
            self._preamble.size
            + self.profile.guard_samples
            + (n_frames * self._n_payload_symbols + 1) * self.profile.ofdm.symbol_len
        )

    def broadcast_samples(self, n_frames: int, frames_per_burst: int = 16) -> int:
        """Exact audio samples of an ``n_frames`` bursted broadcast.

        One ``guard_samples`` silence block separates consecutive bursts;
        there is no trailing guard after the final burst, matching what
        :func:`repro.core.pipeline.frames_to_waveform` and the streaming
        :class:`~repro.core.stream.WaveformSource` emit.
        """
        if n_frames <= 0:
            return 0
        full, rem = divmod(n_frames, frames_per_burst)
        total = full * self.burst_samples(frames_per_burst)
        if rem:
            total += self.burst_samples(rem)
        n_bursts = full + (1 if rem else 0)
        return total + (n_bursts - 1) * self.profile.guard_samples

    def burst_net_bit_rate(self, n_frames: int) -> float:
        """Payload goodput of an ``n_frames`` burst (no trailing guard)."""
        bits = n_frames * self.frame_payload_size * 8
        return bits / (self.burst_samples(n_frames) / self.profile.ofdm.sample_rate)

    # -- receive ----------------------------------------------------------

    def receive(
        self,
        samples: np.ndarray,
        sync_threshold: float = 0.35,
        frames_per_burst: int | None = None,
    ) -> list[ReceivedFrame]:
        """Detect and decode every frame present in ``samples``.

        Handles both single-frame transmissions and bursts.  When the
        caller knows the burst size (SONIC's broadcast schedule uses a
        fixed ``frames_per_burst``), passing it makes burst delineation
        exact; otherwise the frame count behind each preamble is inferred
        from how many OFDM symbol slots carry in-band energy.

        This is the whole-capture wrapper over the chunked engine: the
        capture is fed to a :class:`~repro.modem.streaming
        .StreamingReceiver` in one push, so batch and streaming decodes
        share one code path and stay bit-identical by construction.
        """
        from repro.modem.streaming import StreamingReceiver

        receiver = StreamingReceiver(
            self, sync_threshold=sync_threshold, frames_per_burst=frames_per_burst
        )
        results = receiver.push(np.asarray(samples, dtype=np.float64))
        results += receiver.finish()
        return results

    def _count_active_symbols(
        self, samples: np.ndarray, frame_start: int, max_symbols: int
    ) -> int:
        """Count contiguous symbol slots (after training) with in-band energy."""
        cfg = self.profile.ofdm
        bins = cfg.active_bins
        first = frame_start + cfg.cp_len
        # Band energy of training + payload slots via one strided view and
        # one batched FFT; slots whose window overruns the buffer score 0.
        n_full = (samples.size - first - cfg.fft_size) // cfg.symbol_len + 1
        n_full = max(0, min(max_symbols + 1, n_full))
        energies = np.zeros(max_symbols + 1)
        if n_full:
            windows = strided_symbol_windows(
                samples, first, n_full, cfg.symbol_len, cfg.fft_size
            )
            spectra = np.fft.rfft(windows, axis=1)[:, bins]
            energies[:n_full] = np.sum(np.abs(spectra) ** 2, axis=1)

        reference = energies[0]  # training symbol
        if reference <= 0:
            return 0
        above = np.nonzero(energies[1:] >= 0.25 * reference)[0]
        if above.size == 0:
            return 0
        # Bursts are contiguous, so everything up to the last energetic
        # slot is payload — single flutter dips must not truncate it.
        return int(above[-1]) + 1

    def receive_payloads(self, samples: np.ndarray) -> list[bytes | None]:
        """Convenience wrapper returning just the payloads (None = lost)."""
        return [frame.payload for frame in self.receive(samples)]
