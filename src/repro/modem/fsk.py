"""A GGwave-style multi-tone FSK modem (baseline).

Section 2 of the paper compares SONIC's OFDM profile against simpler
data-over-sound tools: GGwave reaches ~128 bps using frequency-shift
keying.  This module implements that class of modem — 4 bits per symbol,
one of 16 tones per symbol slot, non-coherent energy detection — so the
rate comparison in the RATES benchmark is measured rather than quoted.

The receive path is batched: every symbol window in a message is scored
against the whole tone bank in one strided-window matrix product, and
symbol/byte packing runs through ``np.unpackbits``/``np.packbits``.  The
original per-symbol scalar decoder survives as :meth:`receive_ref`, the
golden reference the batch path is property-tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.chirp import linear_chirp, matched_filter_peak
from repro.fec.crc import crc16_ccitt
from repro.modem.message import MessageStreamingReceiver, PreambleSync

__all__ = ["FskConfig", "FskModem"]


@dataclass(frozen=True)
class FskConfig:
    """Tone plan and timing for the FSK modem."""

    sample_rate: float = 48_000.0
    base_freq_hz: float = 1_875.0
    tone_spacing_hz: float = 187.5
    num_tones: int = 16
    symbol_duration_s: float = 0.030
    amplitude: float = 0.25

    def __post_init__(self) -> None:
        top = self.base_freq_hz + self.tone_spacing_hz * (self.num_tones - 1)
        if top >= self.sample_rate / 2:
            raise ValueError("tone plan exceeds Nyquist frequency")
        if self.num_tones not in (2, 4, 16):
            raise ValueError("num_tones must be 2, 4 or 16")

    @property
    def bits_per_symbol(self) -> int:
        return int(np.log2(self.num_tones))

    @property
    def symbol_samples(self) -> int:
        return int(round(self.symbol_duration_s * self.sample_rate))

    @property
    def raw_bit_rate(self) -> float:
        return self.bits_per_symbol / self.symbol_duration_s

    def tone_freq(self, index: int) -> float:
        return self.base_freq_hz + index * self.tone_spacing_hz


class FskModem:
    """Length-prefixed, CRC-16-protected FSK transceiver."""

    MAX_PAYLOAD = 255
    SYNC_THRESHOLD = 0.4

    def __init__(self, config: FskConfig = FskConfig()) -> None:
        self.config = config
        self._preamble = linear_chirp(
            1_000.0, 5_000.0, 0.060, config.sample_rate, amplitude=config.amplitude
        )
        n = config.symbol_samples
        t = np.arange(n) / config.sample_rate
        window = np.hanning(n)
        self._tones = np.stack(
            [
                np.sin(2 * np.pi * config.tone_freq(i) * t) * window
                for i in range(config.num_tones)
            ]
        )
        # Tone bank transposed once for the strided-window batch product.
        self._bank = np.ascontiguousarray(self._tones.T)
        self.sync = PreambleSync(self._preamble, threshold=self.SYNC_THRESHOLD)

    def _symbols_for(self, message: bytes) -> np.ndarray:
        """Split bytes into tone indices (nibbles, high first, for 16 tones)."""
        bits_per = self.config.bits_per_symbol
        data = np.frombuffer(message, dtype=np.uint8)
        weights = 1 << np.arange(bits_per - 1, -1, -1)
        groups = np.unpackbits(data).reshape(-1, bits_per)
        return (groups * weights).sum(axis=1).astype(np.int64)

    def _symbols_for_ref(self, message: bytes) -> np.ndarray:
        """Scalar per-byte/per-shift packing (golden reference)."""
        bits_per = self.config.bits_per_symbol
        data = np.frombuffer(message, dtype=np.uint8)
        symbols = []
        for byte in data:
            for shift in range(8 - bits_per, -1, -bits_per):
                symbols.append((int(byte) >> shift) & (self.config.num_tones - 1))
        return np.array(symbols, dtype=np.int64)

    # -- transmit ----------------------------------------------------------

    def transmit(self, payload: bytes) -> np.ndarray:
        """Encode a variable-length payload (<= 255 bytes) into audio."""
        if not 0 < len(payload) <= self.MAX_PAYLOAD:
            raise ValueError(f"payload must be 1..{self.MAX_PAYLOAD} bytes")
        crc = crc16_ccitt(payload)
        message = bytes([len(payload)]) + payload + crc.to_bytes(2, "big")
        symbols = self._symbols_for(message)
        body = self.config.amplitude * self._tones[symbols].reshape(-1)
        return np.concatenate([self._preamble, body])

    # -- receive -----------------------------------------------------------

    def _detect_symbols(self, flat: np.ndarray) -> np.ndarray:
        """Tone decisions for a run of back-to-back symbol windows."""
        windows = flat.reshape(-1, self.config.symbol_samples)
        energies = windows @ self._bank
        return np.argmax(np.abs(energies), axis=1)

    def _pack_symbols(self, symbols: np.ndarray) -> np.ndarray:
        """Pack tone indices back into bytes (inverse of `_symbols_for`)."""
        bits_per = self.config.bits_per_symbol
        bits = np.unpackbits(symbols.astype(np.uint8)[:, None], axis=1)[:, 8 - bits_per :]
        return np.packbits(bits.ravel())

    def decode_attempt(self, body: np.ndarray, eos: bool) -> tuple[str, bytes | None]:
        """Incremental decode of the samples following one sync peak."""
        cfg = self.config
        sym_n = cfg.symbol_samples
        per_byte = 8 // cfg.bits_per_symbol
        header = per_byte * sym_n
        if body.size < header:
            return ("done", None) if eos else ("need", header)
        n = int(self._pack_symbols(self._detect_symbols(body[:header]))[0])
        if n == 0:
            return ("done", None)
        total = (1 + n + 2) * per_byte * sym_n
        if body.size < total:
            return ("done", None) if eos else ("need", total)
        data = self._pack_symbols(self._detect_symbols(body[:total]))
        payload = data[1 : 1 + n].tobytes()
        stored = int.from_bytes(data[1 + n : 1 + n + 2].tobytes(), "big")
        if crc16_ccitt(payload) == stored:
            return ("done", payload)
        return ("done", None)

    def stream(self) -> MessageStreamingReceiver:
        """Chunk-fed receiver, bit-identical to :meth:`receive`."""
        return MessageStreamingReceiver(self)

    def receive(self, samples: np.ndarray) -> list[bytes]:
        """Decode every FSK message found in ``samples`` (batch path)."""
        rx = self.stream()
        messages = rx.push(np.asarray(samples, dtype=np.float64))
        return messages + rx.finish()

    # -- scalar golden reference ------------------------------------------

    def _detect_symbol(self, window: np.ndarray) -> int:
        energies = self._tones @ window
        return int(np.argmax(np.abs(energies)))

    def receive_ref(self, samples: np.ndarray) -> list[bytes]:
        """Original per-symbol scalar decoder (golden reference)."""
        samples = np.asarray(samples, dtype=np.float64)
        peaks = matched_filter_peak(
            samples, self._preamble, threshold=self.SYNC_THRESHOLD
        )
        messages: list[bytes] = []
        for start, _score in peaks:
            payload = self._decode_peak_ref(samples, start)
            if payload is not None:
                messages.append(payload)
        return messages

    def _decode_peak_ref(self, samples: np.ndarray, start: int) -> bytes | None:
        """Scalar decode of the message at one sync peak (seed logic)."""
        cfg = self.config
        sym_n = cfg.symbol_samples
        per_byte = 8 // cfg.bits_per_symbol
        pos = start + self._preamble.size
        # Read the length byte first, then the rest.
        if pos + per_byte * sym_n > samples.size:
            return None
        length = self._read_bytes(samples, pos, 1)
        if length is None:
            return None
        n = length[0]
        if n == 0:
            return None
        total = 1 + n + 2
        body = self._read_bytes(samples, pos, total)
        if body is None:
            return None
        payload = body[1 : 1 + n]
        stored = int.from_bytes(body[1 + n : 1 + n + 2], "big")
        if crc16_ccitt(payload) == stored:
            return bytes(payload)
        return None

    def _read_bytes(self, samples: np.ndarray, pos: int, count: int) -> bytearray | None:
        cfg = self.config
        sym_n = cfg.symbol_samples
        per_byte = 8 // cfg.bits_per_symbol
        need = count * per_byte * sym_n
        if pos + need > samples.size:
            return None
        out = bytearray()
        cursor = pos
        for _ in range(count):
            value = 0
            for _ in range(per_byte):
                sym = self._detect_symbol(samples[cursor : cursor + sym_n])
                value = (value << cfg.bits_per_symbol) | sym
                cursor += sym_n
            out.append(value)
        return out

    def transmission_seconds(self, payload_len: int) -> float:
        """Airtime for a payload of the given length."""
        per_byte = 8 // self.config.bits_per_symbol
        n_syms = (1 + payload_len + 2) * per_byte
        return (
            self._preamble.size / self.config.sample_rate
            + n_syms * self.config.symbol_duration_s
        )
