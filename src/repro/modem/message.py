"""Shared sync + streaming front end for the message-framed modems.

The three baseline modems (FSK, GMSK, AudioQR) all frame a payload the
same way: a chirp marker, then a self-describing body whose length is
recovered from the first decoded bytes.  Historically each modem carried
its own copy of the preamble correlation / peak-selection logic; this
module hoists that into one :class:`PreambleSync` built on the
overlap-save :class:`~repro.dsp.chirp.StreamingCorrelator` (cached
template FFT) and one :class:`MessageStreamingReceiver` that any modem
can use for both whole-capture and chunk-fed decoding.

A modem plugs in by exposing:

``sync``
    a :class:`PreambleSync` describing its marker template and detection
    threshold, and

``decode_attempt(body, eos)``
    a pure function of the samples *after* the marker.  It returns
    ``("need", n)`` when the outcome cannot be determined from fewer
    than ``n`` body samples, or ``("done", payload_or_None)`` once it
    can.  The contract that makes chunk feeding bit-identical to batch
    decoding: once ``("done", r)`` is returned for a body prefix, every
    longer body must yield the same ``r``, and with ``eos=True`` the
    attempt must always resolve to ``("done", ...)``.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.dsp.chirp import StreamingCorrelator, StreamingPeakDetector, matched_filter_peak

__all__ = ["PreambleSync", "MessageStreamingReceiver"]


class PreambleSync:
    """A modem's marker template plus its detection operating point."""

    def __init__(
        self,
        template: np.ndarray,
        threshold: float,
        min_separation: int | None = None,
    ) -> None:
        self.template = np.asarray(template, dtype=np.float64)
        if self.template.size == 0:
            raise ValueError("sync template must not be empty")
        self.threshold = float(threshold)
        self.min_separation = (
            int(min_separation) if min_separation is not None else self.template.size
        )

    def scan(self, samples: np.ndarray) -> list[tuple[int, float]]:
        """Whole-capture peak scan; identical to :func:`matched_filter_peak`."""
        return matched_filter_peak(
            samples, self.template, self.threshold, self.min_separation
        )

    def correlator(self) -> StreamingCorrelator:
        return StreamingCorrelator(self.template)

    def detector(self) -> StreamingPeakDetector:
        return StreamingPeakDetector(self.threshold, self.min_separation)


class MessageStreamingReceiver:
    """Chunk-fed message decoder with chunk-size-invariant output.

    Peaks come from the streaming correlator/detector pair, whose scores
    are bit-identical for any chunking of the capture; each finalised
    peak is then decoded by the modem's ``decode_attempt`` as soon as
    enough body samples are buffered.  Messages are emitted in marker
    order, exactly like the whole-capture receive path (which is itself
    implemented as one ``push`` + ``finish`` through this class).
    """

    def __init__(self, modem) -> None:
        self._modem = modem
        sync: PreambleSync = modem.sync
        self._body_offset = sync.template.size
        self._correlator = sync.correlator()
        self._detector = sync.detector()
        self._buffer = np.zeros(0, dtype=np.float64)
        self._base = 0  # absolute sample index of self._buffer[0]
        self._open: deque[tuple[int, float]] = deque()
        self._finished = False
        # Stats (mirrors the OFDM StreamingReceiver's bookkeeping).
        self.total_pushed = 0
        self.peaks_detected = 0
        self.messages_decoded = 0
        self.max_buffer_samples = 0

    # -- feeding -----------------------------------------------------------

    def push(self, chunk: np.ndarray) -> list[bytes]:
        """Feed samples; returns the messages finalised by this chunk."""
        if self._finished:
            raise RuntimeError("receiver already finished")
        chunk = np.asarray(chunk, dtype=np.float64)
        self.total_pushed += chunk.size
        if chunk.size:
            self._buffer = (
                np.concatenate([self._buffer, chunk]) if self._buffer.size else chunk.copy()
            )
        peaks = self._detector.push(*self._correlator.push(chunk))
        self.peaks_detected += len(peaks)
        self._open.extend(peaks)
        out = self._drain(eos=False)
        self._trim()
        self.max_buffer_samples = max(self.max_buffer_samples, self._buffer.size)
        return out

    def finish(self) -> list[bytes]:
        """End of capture: resolve pending peaks and decode what remains."""
        if self._finished:
            return []
        self._finished = True
        peaks = self._detector.push(*self._correlator.flush())
        peaks += self._detector.finish()
        self.peaks_detected += len(peaks)
        self._open.extend(peaks)
        out = self._drain(eos=True)
        self._buffer = np.zeros(0, dtype=np.float64)
        return out

    # -- decoding ----------------------------------------------------------

    def _drain(self, eos: bool) -> list[bytes]:
        out: list[bytes] = []
        while self._open:
            start, _score = self._open[0]
            body_start = start + self._body_offset - self._base
            body = (
                self._buffer[body_start:]
                if body_start < self._buffer.size
                else np.zeros(0, dtype=np.float64)
            )
            status, value = self._modem.decode_attempt(body, eos)
            if status == "need":
                if eos:
                    raise RuntimeError("decode_attempt must resolve at end of capture")
                break
            self._open.popleft()
            if value is not None:
                self.messages_decoded += 1
                out.append(value)
        return out

    def _trim(self) -> None:
        """Drop buffered samples no open or future peak can reach back to."""
        keep = self._detector.watermark
        pending = self._detector.pending_min
        if pending is not None:
            keep = min(keep, pending)
        if self._open:
            keep = min(keep, self._open[0][0])
        if keep > self._base:
            self._buffer = self._buffer[keep - self._base :]
            self._base = keep
