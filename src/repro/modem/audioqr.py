"""An AudioQR-class long-range chirp modem (baseline).

Section 2: "AudioQR works in the near-ultrasonic frequency band
(17.5-19.5 kHz) and can reach low speeds of about 100 bps while
supporting long distances (up to 150 meters)."  The trick behind that
range is spreading every symbol over a long chirp: matched filtering
buys tens of dB of processing gain, trading throughput for distance.

This baseline encodes each bit as an up- or down-chirp in the
near-ultrasonic band and decodes by correlating against both templates —
the design point SONIC rejects ("sacrifices transmission speed for high
distance, while we target very low air distance").

The receive path correlates every bit window against both chirp
templates in one batched matrix product; the original per-bit scalar
decoder survives as :meth:`receive_ref`, the golden reference the batch
path is property-tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.chirp import linear_chirp, matched_filter_peak
from repro.fec.crc import crc16_ccitt
from repro.modem.message import MessageStreamingReceiver, PreambleSync
from repro.util.bits import bits_to_bytes, bytes_to_bits

__all__ = ["AudioQrConfig", "AudioQrModem"]


@dataclass(frozen=True)
class AudioQrConfig:
    """Chirp plan: near-ultrasonic, long symbols."""

    sample_rate: float = 48_000.0
    band_low_hz: float = 17_500.0
    band_high_hz: float = 19_500.0
    symbol_duration_s: float = 0.010  # 100 bps
    amplitude: float = 0.25

    def __post_init__(self) -> None:
        if not 0 < self.band_low_hz < self.band_high_hz < self.sample_rate / 2:
            raise ValueError("invalid chirp band")
        if self.symbol_duration_s <= 0:
            raise ValueError("symbol duration must be positive")

    @property
    def raw_bit_rate(self) -> float:
        return 1.0 / self.symbol_duration_s

    @property
    def symbol_samples(self) -> int:
        return int(round(self.symbol_duration_s * self.sample_rate))


class AudioQrModem:
    """1 bit per chirp: up-chirp = 1, down-chirp = 0."""

    MAX_PAYLOAD = 255
    SYNC_THRESHOLD = 0.35

    def __init__(self, config: AudioQrConfig = AudioQrConfig()) -> None:
        self.config = config
        cfg = config
        self._up = linear_chirp(
            cfg.band_low_hz, cfg.band_high_hz, cfg.symbol_duration_s,
            cfg.sample_rate, amplitude=1.0,
        )
        self._down = linear_chirp(
            cfg.band_high_hz, cfg.band_low_hz, cfg.symbol_duration_s,
            cfg.sample_rate, amplitude=1.0,
        )
        # Frame marker: a double-length up-down sweep.
        marker = np.concatenate([self._up, self._down])
        self._marker = marker * cfg.amplitude
        # Both templates side by side for the batched bit decisions.
        self._templates = np.column_stack([self._up, self._down])
        self.sync = PreambleSync(self._marker, threshold=self.SYNC_THRESHOLD)

    def transmit(self, payload: bytes) -> np.ndarray:
        """Encode 1..255 bytes as a chirp train."""
        if not 0 < len(payload) <= self.MAX_PAYLOAD:
            raise ValueError(f"payload must be 1..{self.MAX_PAYLOAD} bytes")
        message = bytes([len(payload)]) + payload + crc16_ccitt(payload).to_bytes(2, "big")
        bits = bytes_to_bits(message)
        cfg = self.config
        chunks = [self._marker]
        for bit in bits:
            chunks.append(cfg.amplitude * (self._up if bit else self._down))
        return np.concatenate(chunks)

    # -- receive -----------------------------------------------------------

    def _detect_bits(self, flat: np.ndarray) -> np.ndarray:
        """Up-vs-down decisions for a run of back-to-back bit windows."""
        windows = flat.reshape(-1, self.config.symbol_samples)
        energies = windows @ self._templates
        return (np.abs(energies[:, 0]) > np.abs(energies[:, 1])).astype(np.uint8)

    def decode_attempt(self, body: np.ndarray, eos: bool) -> tuple[str, bytes | None]:
        """Incremental decode of the samples following one marker peak."""
        n_sym = self.config.symbol_samples
        header = 8 * n_sym
        if body.size < header:
            return ("done", None) if eos else ("need", header)
        n = int(np.packbits(self._detect_bits(body[:header]))[0])
        if n == 0:
            return ("done", None)
        total_bits = (1 + n + 2) * 8
        total = total_bits * n_sym
        if body.size < total:
            return ("done", None) if eos else ("need", total)
        stream = bits_to_bytes(self._detect_bits(body[:total]))
        payload = stream[1 : 1 + n]
        stored = int.from_bytes(stream[1 + n : 1 + n + 2], "big")
        if crc16_ccitt(payload) == stored:
            return ("done", payload)
        return ("done", None)

    def stream(self) -> MessageStreamingReceiver:
        """Chunk-fed receiver, bit-identical to :meth:`receive`."""
        return MessageStreamingReceiver(self)

    def receive(self, samples: np.ndarray) -> list[bytes]:
        """Decode every message found in ``samples`` (batch path)."""
        rx = self.stream()
        messages = rx.push(np.asarray(samples, dtype=np.float64))
        return messages + rx.finish()

    # -- scalar golden reference ------------------------------------------

    def receive_ref(self, samples: np.ndarray) -> list[bytes]:
        """Original per-bit scalar correlation receiver (golden reference)."""
        samples = np.asarray(samples, dtype=np.float64)
        peaks = matched_filter_peak(
            samples, self._marker, threshold=self.SYNC_THRESHOLD
        )
        messages: list[bytes] = []
        for start, _score in peaks:
            payload = self._decode_peak_ref(samples, start)
            if payload is not None:
                messages.append(payload)
        return messages

    def _decode_peak_ref(self, samples: np.ndarray, start: int) -> bytes | None:
        """Scalar decode of the message at one marker peak (seed logic)."""
        n_sym = self.config.symbol_samples
        pos = start + self._marker.size
        if pos + 8 * n_sym > samples.size:
            return None
        length_bits = self._read_bits(samples, pos, 8)
        n = int(bits_to_bytes_safe(length_bits))
        if n == 0:
            return None
        total_bits = (1 + n + 2) * 8
        if pos + total_bits * n_sym > samples.size:
            return None
        bits = self._read_bits(samples, pos, total_bits)
        stream = bits_to_bytes(bits)
        payload = stream[1 : 1 + n]
        stored = int.from_bytes(stream[1 + n : 1 + n + 2], "big")
        if crc16_ccitt(payload) == stored:
            return payload
        return None

    def _read_bits(self, samples: np.ndarray, pos: int, count: int) -> np.ndarray:
        cfg = self.config
        n_sym = cfg.symbol_samples
        out = np.zeros(count, dtype=np.uint8)
        for i in range(count):
            window = samples[pos + i * n_sym : pos + (i + 1) * n_sym]
            up = float(np.dot(window, self._up))
            down = float(np.dot(window, self._down))
            out[i] = 1 if abs(up) > abs(down) else 0
        return out

    def transmission_seconds(self, payload_len: int) -> float:
        n_bits = (1 + payload_len + 2) * 8
        return (
            self._marker.size / self.config.sample_rate
            + n_bits * self.config.symbol_duration_s
        )


def bits_to_bytes_safe(bits: np.ndarray) -> int:
    """MSB-first integer value of a bit vector (typically length 8)."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size == 0:
        return 0
    padded = np.concatenate([np.zeros((-bits.size) % 8, dtype=np.uint8), bits])
    return int.from_bytes(np.packbits(padded).tobytes(), "big")
