"""GMSK data-over-sound modem.

Quiet (the library SONIC builds on) ships GMSK profiles alongside OFDM;
minimum-shift keying with a Gaussian pulse filter is the classic
constant-envelope modulation (GSM's physical layer).  Constant envelope
matters on the audio path: it survives speaker/amplifier clipping that
would crush a high-PAPR OFDM waveform, at the price of a lower bit rate.

Implementation: bits -> NRZ -> Gaussian filter (BT configurable) ->
phase integration with modulation index 0.5 -> upconversion to an audio
carrier.  The receiver downconverts to I/Q, differentiates the phase,
matched-filters, and recovers symbol timing from the preamble chirp.

The batch receive path runs the frequency discriminator once per burst
over a bounded window (the original decoder re-filtered everything from
each peak to the end of the capture), makes all four sub-symbol timing
hypotheses with one vectorised gather-sum each, and locates the sync
word with a sliding-window comparison.  A cheap header peek sizes the
decode window from the recovered length field, so short frames never pay
for the 4 KiB worst case.  The original scalar decoder survives as
:meth:`receive_ref`, the golden reference the batch path is
property-tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal

from repro.dsp.chirp import linear_chirp, matched_filter_peak
from repro.dsp.filters import fir_lowpass, filter_signal
from repro.fec.crc import crc16_ccitt
from repro.modem.message import MessageStreamingReceiver, PreambleSync
from repro.util.bits import bits_to_bytes, bytes_to_bits

__all__ = ["GmskConfig", "GmskModem"]


@dataclass(frozen=True)
class GmskConfig:
    """GMSK dimensioning."""

    sample_rate: float = 48_000.0
    carrier_hz: float = 9_200.0  # SONIC's audio carrier
    symbol_rate: float = 4_800.0
    bt: float = 0.3  # Gaussian filter bandwidth-time product
    amplitude: float = 0.25

    def __post_init__(self) -> None:
        sps = self.sample_rate / self.symbol_rate
        if abs(sps - round(sps)) > 1e-9:
            raise ValueError("sample_rate must be an integer multiple of symbol_rate")
        if not 0.1 <= self.bt <= 1.0:
            raise ValueError("BT product out of the practical range [0.1, 1.0]")
        if self.carrier_hz + self.symbol_rate > self.sample_rate / 2:
            raise ValueError("carrier + symbol rate exceeds Nyquist")

    @property
    def samples_per_symbol(self) -> int:
        return int(round(self.sample_rate / self.symbol_rate))

    @property
    def raw_bit_rate(self) -> float:
        return self.symbol_rate  # 1 bit per symbol


def _gaussian_taps(bt: float, sps: int, span_symbols: int = 4) -> np.ndarray:
    """Gaussian pulse-shaping filter, unit DC gain."""
    t = np.arange(-span_symbols * sps, span_symbols * sps + 1) / sps
    alpha = np.sqrt(np.log(2.0) / 2.0) / bt
    taps = (np.sqrt(np.pi) / alpha) * np.exp(-((np.pi * t / alpha) ** 2))
    return taps / np.sum(taps)


class GmskModem:
    """Length-prefixed, CRC-16-protected GMSK transceiver."""

    MAX_PAYLOAD = 4_096
    SYNC_THRESHOLD = 0.4
    _SYNC_WORD = 0xD391  # 16-bit sync pattern after the preamble
    _SHIFT_LIMIT = 40  # bit-level sync search range

    def __init__(self, config: GmskConfig = GmskConfig()) -> None:
        self.config = config
        sps = config.samples_per_symbol
        self._pulse = _gaussian_taps(config.bt, sps)
        self._preamble = linear_chirp(
            config.carrier_hz - 3_000,
            config.carrier_hz + 3_000,
            0.03,
            config.sample_rate,
            amplitude=config.amplitude,
        )
        self._lp = fir_lowpass(config.symbol_rate, config.sample_rate, 127)
        self._sync_bits = bytes_to_bits(self._SYNC_WORD.to_bytes(2, "big"))
        # Group-delay of the pulse shaping centres decisions mid-symbol.
        self._delay = (self._pulse.size - 1) // 2
        # Samples whose discriminator output is settled: the low-pass FIR
        # reaches `lp.size // 2` samples ahead, so the trailing margin of
        # any window is edge-affected and never used for decisions.
        self._margin = self._lp.size + sps
        max_koff = 3 * sps // 4
        # Header peek: enough settled bits to run the full sync-shift
        # search plus the 16-bit length field under every timing offset.
        hdr_bits = self._SHIFT_LIMIT + 16 + 16
        self._hdr_need = self._delay + max_koff + (hdr_bits + 1) * sps + self._margin
        # Hard ceiling: the largest frame the sync search can ever accept.
        cap_bits = self._SHIFT_LIMIT + 16 + (4 + self.MAX_PAYLOAD) * 8 + 1
        self._cap = self._delay + max_koff + cap_bits * sps + self._margin
        self.sync = PreambleSync(self._preamble, threshold=self.SYNC_THRESHOLD)

    # -- modulation ------------------------------------------------------------

    def _phase_from_bits(self, bits: np.ndarray) -> np.ndarray:
        cfg = self.config
        sps = cfg.samples_per_symbol
        nrz = 2.0 * bits.astype(np.float64) - 1.0
        impulses = np.zeros(bits.size * sps)
        impulses[::sps] = nrz
        shaped = signal.fftconvolve(impulses, self._pulse * sps, mode="full")
        # Modulation index 0.5: +/- pi/2 phase advance per symbol.
        return np.cumsum(shaped) * (np.pi / 2.0) / sps

    def transmit(self, payload: bytes) -> np.ndarray:
        """Encode ``payload`` (1..4096 bytes) into audio."""
        if not 0 < len(payload) <= self.MAX_PAYLOAD:
            raise ValueError(f"payload must be 1..{self.MAX_PAYLOAD} bytes")
        cfg = self.config
        header = len(payload).to_bytes(2, "big")
        crc = crc16_ccitt(payload).to_bytes(2, "big")
        # Two alternating pad bytes ahead of the sync word absorb the
        # chirp detector's +/- few-bit timing slop in both directions.
        message = (
            b"\xaa\xaa"
            + self._SYNC_WORD.to_bytes(2, "big")
            + header
            + payload
            + crc
        )
        bits = bytes_to_bits(message)
        # Pad tail so the Gaussian filter ring-out stays in-frame.
        bits = np.concatenate([bits, np.zeros(8, dtype=np.uint8)])
        phase = self._phase_from_bits(bits)
        t = np.arange(phase.size) / cfg.sample_rate
        body = cfg.amplitude * np.cos(2 * np.pi * cfg.carrier_hz * t + phase)
        return np.concatenate([self._preamble, body])

    # -- demodulation ------------------------------------------------------------

    def _instantaneous_freq(self, samples: np.ndarray) -> np.ndarray:
        """Frequency discriminator output around the carrier (rad/sample)."""
        cfg = self.config
        n = samples.size
        t = np.arange(n) / cfg.sample_rate
        lo = np.exp(-2j * np.pi * cfg.carrier_hz * t)
        baseband = samples * lo
        i = filter_signal(self._lp, baseband.real)
        q = filter_signal(self._lp, baseband.imag)
        z = i + 1j * q
        freq = np.angle(z[1:] * np.conj(z[:-1]))
        return np.concatenate([[0.0], freq])

    def _decode_bits_batch(self, freq: np.ndarray, delay: int, sps: int) -> np.ndarray:
        """Vectorised symbol integration (same sums as `_decode_bits`)."""
        max_bits = (freq.size - delay) // sps
        if max_bits <= 0:
            return np.zeros(0, dtype=np.uint8)
        centers = delay + np.arange(max_bits) * sps
        idx = np.minimum(centers[:, None] + np.arange(sps)[None, :], freq.size - 1)
        sums = freq[idx].sum(axis=1)
        return (sums > 0).astype(np.uint8)

    def _sync_shifts(self, bits: np.ndarray) -> np.ndarray:
        """All shifts (ascending, ref search order) where the sync word lands."""
        limit = min(bits.size - 16, self._SHIFT_LIMIT)
        if limit < 0:
            return np.zeros(0, dtype=np.int64)
        windows = np.lib.stride_tricks.sliding_window_view(bits[: limit + 16], 16)
        return np.flatnonzero((windows == self._sync_bits).all(axis=1))

    def _frame_from_bits_batch(self, bits: np.ndarray) -> bytes | None:
        if bits.size < 48:
            return None
        for shift in self._sync_shifts(bits):
            frame = bits[shift + 16 :]
            usable = frame[: (frame.size // 8) * 8]
            if usable.size < 32:
                continue
            stream = bits_to_bytes(usable)
            length = int.from_bytes(stream[0:2], "big")
            if length == 0 or 2 + length + 2 > len(stream):
                continue
            payload = stream[2 : 2 + length]
            stored = int.from_bytes(stream[2 + length : 2 + length + 2], "big")
            if crc16_ccitt(payload) == stored:
                return payload
        return None

    def _decode_window(self, window: np.ndarray) -> bytes | None:
        """Full decode of one canonical post-preamble window."""
        sps = self.config.samples_per_symbol
        freq = self._instantaneous_freq(window)
        for k in range(4):
            bits = self._decode_bits_batch(freq, self._delay + k * sps // 4, sps)
            message = self._frame_from_bits_batch(bits)
            if message is not None:
                return message
        return None

    def _need_from_header(self, body: np.ndarray) -> int | None:
        """Decode-window budget from the header peek, or ``None`` if no
        sync candidate can ever produce a frame (early reject)."""
        sps = self.config.samples_per_symbol
        freq = self._instantaneous_freq(body[: self._hdr_need])
        trusted = freq.size - self._margin
        need: int | None = None
        for k in range(4):
            delay = self._delay + k * sps // 4
            n_bits = (trusted - delay) // sps
            if n_bits <= 0:
                continue
            bits = self._decode_bits_batch(freq, delay, sps)[:n_bits]
            for shift in self._sync_shifts(bits):
                length = int.from_bytes(
                    np.packbits(bits[shift + 16 : shift + 32]).tobytes(), "big"
                )
                if length == 0:
                    continue
                last_bit = shift + 16 + (4 + length) * 8
                cand = delay + (last_bit + 1) * sps + self._margin
                need = cand if need is None else max(need, cand)
        return min(need, self._cap) if need is not None else None

    def decode_attempt(self, body: np.ndarray, eos: bool) -> tuple[str, bytes | None]:
        """Incremental decode of the samples following one sync peak.

        The decode window is a canonical function of the capture content
        (header peek -> sample budget), so chunk-fed and whole-capture
        decoding examine byte-identical windows.
        """
        sps = self.config.samples_per_symbol
        if body.size <= 8 * sps:
            return ("done", None) if eos else ("need", 8 * sps + 1)
        if body.size < self._hdr_need:
            if not eos:
                return ("need", self._hdr_need)
            return ("done", self._decode_window(body))
        need = self._need_from_header(body)
        if need is None:
            return ("done", None)
        if body.size >= need:
            return ("done", self._decode_window(body[:need]))
        if eos:
            return ("done", self._decode_window(body))
        return ("need", need)

    def stream(self) -> MessageStreamingReceiver:
        """Chunk-fed receiver, bit-identical to :meth:`receive`."""
        return MessageStreamingReceiver(self)

    def receive(self, samples: np.ndarray) -> list[bytes]:
        """Decode every GMSK message found in ``samples`` (batch path)."""
        rx = self.stream()
        messages = rx.push(np.asarray(samples, dtype=np.float64))
        return messages + rx.finish()

    # -- scalar golden reference ------------------------------------------

    def receive_ref(self, samples: np.ndarray) -> list[bytes]:
        """Original scalar decoder (golden reference).

        Re-runs the discriminator from each peak to the end of the
        capture and walks timing offsets and sync shifts in Python —
        kept verbatim so the batch path stays pinned against it.
        """
        samples = np.asarray(samples, dtype=np.float64)
        peaks = matched_filter_peak(
            samples, self._preamble, threshold=self.SYNC_THRESHOLD
        )
        messages: list[bytes] = []
        for start, _score in peaks:
            payload = self._decode_peak_ref(samples, start)
            if payload is not None:
                messages.append(payload)
        return messages

    def _decode_peak_ref(self, samples: np.ndarray, start: int) -> bytes | None:
        """Scalar decode of the message at one sync peak (seed logic)."""
        sps = self.config.samples_per_symbol
        begin = start + self._preamble.size
        if begin + 8 * sps >= samples.size:
            return None
        freq = self._instantaneous_freq(samples[begin:])
        # Group-delay of the pulse shaping centres decisions
        # mid-symbol; sweep sub-symbol offsets for the best timing.
        delay = (self._pulse.size - 1) // 2
        for k in range(4):
            bits = self._decode_bits(freq, delay + k * sps // 4, sps)
            message = self._frame_from_bits(bits)
            if message is not None:
                return message
        return None

    def _decode_bits(self, freq: np.ndarray, delay: int, sps: int) -> np.ndarray:
        max_bits = (freq.size - delay) // sps
        if max_bits <= 0:
            return np.zeros(0, dtype=np.uint8)
        # Integrate frequency over each symbol: positive net phase = 1.
        centers = delay + np.arange(max_bits) * sps
        sums = np.zeros(max_bits)
        for offset in range(sps):
            idx = np.minimum(centers + offset, freq.size - 1)
            sums += freq[idx]
        return (sums > 0).astype(np.uint8)

    def _frame_from_bits(self, bits: np.ndarray) -> bytes | None:
        if bits.size < 48:
            return None
        # Bit-level sync search: chirp timing can be off by a few bits.
        sync_bits = bytes_to_bits(self._SYNC_WORD.to_bytes(2, "big"))
        limit = min(bits.size - 16, self._SHIFT_LIMIT)
        for shift in range(limit + 1):
            if not np.array_equal(bits[shift : shift + 16], sync_bits):
                continue
            frame = bits[shift + 16 :]
            usable = frame[: (frame.size // 8) * 8]
            if usable.size < 32:
                continue
            stream = bits_to_bytes(usable)
            length = int.from_bytes(stream[0:2], "big")
            if length == 0 or 2 + length + 2 > len(stream):
                continue
            payload = stream[2 : 2 + length]
            stored = int.from_bytes(stream[2 + length : 2 + length + 2], "big")
            if crc16_ccitt(payload) == stored:
                return payload
        return None

    def transmission_seconds(self, payload_len: int) -> float:
        """Airtime for a payload of the given length."""
        n_bits = (2 + 2 + 2 + payload_len + 2) * 8 + 8
        return (
            self._preamble.size / self.config.sample_rate
            + n_bits / self.config.raw_bit_rate
        )
