"""Systematic Reed-Solomon codec over GF(256).

This is the outer code of the SONIC frame pipeline (Quiet's ``rs8``): each
protected block carries ``nsym`` parity bytes and can correct up to
``nsym // 2`` unknown byte errors, or more when erasure positions are
known (2*errors + erasures <= nsym).

Decoding follows the classic chain — syndromes, Forney syndromes to fold
in erasures, Berlekamp-Massey for the error locator, a Chien-style root
search for positions, and the Forney algorithm for magnitudes.  The
polynomial conventions (coefficient lists, highest degree first) follow
the standard "Reed-Solomon codes for coders" formulation.

Two implementations coexist:

* the **vectorised** path — :meth:`ReedSolomon.encode_blocks` /
  :meth:`ReedSolomon.decode_blocks` run the LFSR parity recursion, the
  syndrome computation, and the Chien search as numpy table gathers over a
  whole ``(n_blocks, block_len)`` stack at once, which is what the batch
  frame pipeline and the broadcast carousel feed; and
* the **scalar reference** — :meth:`ReedSolomon.encode_ref` /
  :meth:`ReedSolomon.decode_ref`, the original byte-at-a-time code, kept
  as the golden model the property tests compare against.

``encode``/``decode`` are thin wrappers over the vectorised path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fec.galois import GF

__all__ = ["ReedSolomon", "RSDecodeError", "BlockDecodeReport"]


class RSDecodeError(Exception):
    """Raised when a block has more errata than the code can correct."""


@dataclass(frozen=True)
class DecodeReport:
    """Outcome of a successful decode."""

    data: bytes
    corrected: int


@dataclass(frozen=True)
class BlockDecodeReport:
    """Outcome of :meth:`ReedSolomon.decode_blocks` over a block stack."""

    data: np.ndarray  # (n_blocks, block_len - nsym) uint8, rows valid iff ok
    corrected: np.ndarray  # (n_blocks,) errata fixed per block
    ok: np.ndarray  # (n_blocks,) bool
    errors: tuple[str | None, ...]  # failure reason per block (None = ok)

    @property
    def all_ok(self) -> bool:
        return bool(self.ok.all())


def _poly_scale(p: list[int], x: int) -> list[int]:
    return [GF.mul(c, x) for c in p]


def _poly_add(p: list[int], q: list[int]) -> list[int]:
    size = max(len(p), len(q))
    out = [0] * size
    for i, c in enumerate(p):
        out[i + size - len(p)] = c
    for i, c in enumerate(q):
        out[i + size - len(q)] ^= c
    return out


def _poly_mul(p: list[int], q: list[int]) -> list[int]:
    out = [0] * (len(p) + len(q) - 1)
    for j, qc in enumerate(q):
        if qc == 0:
            continue
        for i, pc in enumerate(p):
            if pc:
                out[i + j] ^= GF.mul(pc, qc)
    return out


def _poly_eval(p: list[int], x: int) -> int:
    acc = p[0]
    for coeff in p[1:]:
        acc = GF.mul(acc, x) ^ coeff
    return acc


class ReedSolomon:
    """RS(n, n - nsym) codec with byte symbols and shortened blocks.

    Parameters
    ----------
    nsym:
        Number of parity symbols appended per block.  The default of 32
        matches the classic RS(255, 223) configuration and the strength
        class of Quiet's ``rs8`` scheme.
    """

    def __init__(self, nsym: int = 32) -> None:
        if not 2 <= nsym <= 254:
            raise ValueError(f"nsym must be in [2, 254], got {nsym}")
        self.nsym = nsym
        gen = [1]
        for i in range(nsym):
            gen = _poly_mul(gen, [1, GF.exp(i)])
        self._gen = gen
        # LFSR tap table: row j holds gen[j+1] * b for every byte b, so the
        # vectorised parity recursion is a single gather per data column.
        self._gen_taps = GF.mul_table[np.asarray(gen[1:], dtype=np.intp)]
        # Syndrome evaluation points alpha^0 .. alpha^(nsym-1).
        self._synd_points = GF.exp_vec(np.arange(nsym)).astype(np.intp)

    @property
    def max_data_len(self) -> int:
        """Largest message (in bytes) a single block can carry."""
        return 255 - self.nsym

    # -- encoding ------------------------------------------------------------

    def encode(self, data: bytes) -> bytes:
        """Append ``nsym`` parity bytes to ``data`` (systematic encoding)."""
        block = np.frombuffer(bytes(data), dtype=np.uint8)
        return self.encode_blocks(block[None, :])[0].tobytes()

    def encode_blocks(self, data: np.ndarray) -> np.ndarray:
        """Systematically encode a whole ``(n_blocks, k)`` stack at once.

        Every row receives its ``nsym`` parity bytes; the return shape is
        ``(n_blocks, k + nsym)``.  The LFSR parity recursion runs column
        by column (``k`` steps) but over all blocks simultaneously, so the
        per-byte work is numpy table gathers rather than Python loops.
        """
        data = np.atleast_2d(np.asarray(data, dtype=np.uint8))
        if data.ndim != 2:
            raise ValueError(f"expected a (n_blocks, k) array, got {data.shape}")
        n, k = data.shape
        if k == 0:
            raise ValueError("cannot encode an empty message")
        if k > self.max_data_len:
            raise ValueError(
                f"message of {k} bytes exceeds block capacity {self.max_data_len}"
            )
        taps = self._gen_taps  # (nsym, 256)
        parity = np.zeros((n, self.nsym), dtype=np.uint8)
        for i in range(k):
            feedback = data[:, i] ^ parity[:, 0]
            shifted = np.empty_like(parity)
            shifted[:, :-1] = parity[:, 1:]
            shifted[:, -1] = 0
            parity = shifted ^ taps[:, feedback].T
        return np.concatenate([data, parity], axis=1)

    def encode_ref(self, data: bytes) -> bytes:
        """Golden byte-at-a-time reference encoder (the seed implementation)."""
        if len(data) == 0:
            raise ValueError("cannot encode an empty message")
        if len(data) > self.max_data_len:
            raise ValueError(
                f"message of {len(data)} bytes exceeds block capacity "
                f"{self.max_data_len}"
            )
        gen = self._gen
        msg = list(data) + [0] * self.nsym
        for i in range(len(data)):
            coeff = msg[i]
            if coeff:
                for j in range(1, len(gen)):
                    msg[i + j] ^= GF.mul(gen[j], coeff)
        return bytes(data) + bytes(msg[len(data) :])

    # -- decoding ------------------------------------------------------------

    def decode(self, block: bytes, erase_pos: list[int] | None = None) -> bytes:
        """Decode one block, returning the corrected message bytes.

        ``erase_pos`` lists byte indices (into ``block``) known to be
        corrupt — e.g. positions the demodulator flagged as unreliable.
        Raises :class:`RSDecodeError` when the errata exceed capacity.
        """
        return self.decode_detailed(block, erase_pos).data

    def decode_detailed(
        self, block: bytes, erase_pos: list[int] | None = None
    ) -> DecodeReport:
        """Like :meth:`decode` but also reports how many bytes were fixed."""
        arr = np.frombuffer(bytes(block), dtype=np.uint8)
        report = self.decode_blocks(
            arr[None, :], [erase_pos] if erase_pos is not None else None
        )
        if not report.ok[0]:
            raise RSDecodeError(report.errors[0])
        return DecodeReport(report.data[0].tobytes(), int(report.corrected[0]))

    def decode_blocks(
        self,
        blocks: np.ndarray,
        erase_pos: list[list[int] | None] | None = None,
    ) -> BlockDecodeReport:
        """Decode a ``(n_blocks, block_len)`` stack in one call.

        Syndromes are computed for all blocks at once; only blocks with
        non-zero syndromes enter the (data-dependent) errata chain, so a
        clean broadcast costs one vectorised pass.  Per-block failures are
        reported in the ``ok``/``errors`` fields rather than raised, which
        lets the frame pipeline keep the surviving frames.

        ``erase_pos`` optionally gives one erasure-index list per block.
        """
        blocks = np.atleast_2d(np.asarray(blocks, dtype=np.uint8))
        if blocks.ndim != 2:
            raise ValueError(f"expected a (n_blocks, L) array, got {blocks.shape}")
        n, length = blocks.shape
        if length <= self.nsym:
            raise ValueError(
                f"block of {length} bytes is too short for {self.nsym} parity"
            )
        if length > 255:
            raise ValueError(f"block of {length} bytes exceeds RS symbol span")
        if erase_pos is None:
            erasures: list[list[int]] = [[] for _ in range(n)]
        else:
            if len(erase_pos) != n:
                raise ValueError(
                    f"got {len(erase_pos)} erasure lists for {n} blocks"
                )
            erasures = [sorted(set(ep or [])) for ep in erase_pos]
            for ep in erasures:
                if any(not 0 <= p < length for p in ep):
                    raise ValueError("erasure position out of range")

        work = blocks.copy()
        for i, ep in enumerate(erasures):
            if ep:
                work[i, ep] = 0

        synd = self._syndromes_blocks(work)
        ok = np.ones(n, dtype=bool)
        corrected = np.array([len(ep) for ep in erasures], dtype=np.int64)
        errors: list[str | None] = [None] * n

        for i in range(n):
            if len(erasures[i]) > self.nsym:
                ok[i] = False
                errors[i] = (
                    f"{len(erasures[i])} erasures exceed correction "
                    f"capacity {self.nsym}"
                )
        needs_chain = np.nonzero(synd.any(axis=1) & ok)[0]
        if needs_chain.size:
            self._decode_errata_blocks(
                work, synd, erasures, needs_chain, corrected, ok, errors
            )
        return BlockDecodeReport(
            work[:, : length - self.nsym], corrected, ok, tuple(errors)
        )

    def decode_ref(
        self, block: bytes, erase_pos: list[int] | None = None
    ) -> DecodeReport:
        """Golden scalar reference decoder (the seed implementation)."""
        if len(block) <= self.nsym:
            raise ValueError(
                f"block of {len(block)} bytes is too short for {self.nsym} parity"
            )
        if len(block) > 255:
            raise ValueError(f"block of {len(block)} bytes exceeds RS symbol span")
        erase_pos = sorted(set(erase_pos or []))
        if any(not 0 <= p < len(block) for p in erase_pos):
            raise ValueError("erasure position out of range")
        if len(erase_pos) > self.nsym:
            raise RSDecodeError(
                f"{len(erase_pos)} erasures exceed correction capacity {self.nsym}"
            )

        msg = list(block)
        for pos in erase_pos:
            msg[pos] = 0
        synd = self._syndromes(msg)
        if max(synd) == 0:
            return DecodeReport(bytes(msg[: -self.nsym]), len(erase_pos))

        fsynd = self._forney_syndromes(synd, erase_pos, len(msg))
        err_loc = self._berlekamp_massey(fsynd, len(erase_pos))
        err_pos = self._find_errors(err_loc[::-1], len(msg))
        msg = self._correct_errata(msg, synd, erase_pos + err_pos)
        if max(self._syndromes(msg)) > 0:
            raise RSDecodeError("residual syndromes after correction")
        return DecodeReport(
            bytes(msg[: -self.nsym]), len(erase_pos) + len(err_pos)
        )

    def check(self, block: bytes) -> bool:
        """Return True when the block's syndromes all vanish (no errata)."""
        if len(block) <= self.nsym or len(block) > 255:
            return False
        arr = np.frombuffer(bytes(block), dtype=np.uint8)
        return not self._syndromes_blocks(arr[None, :]).any()

    # -- vectorised decoding internals ---------------------------------------

    def _syndromes_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Syndromes of every block at once: ``(n, nsym)`` uint8.

        Horner over the columns — one product-table gather and one XOR per
        data byte position, for all blocks and all syndrome points.
        """
        table = GF.mul_table
        xs = self._synd_points
        acc = np.zeros((blocks.shape[0], self.nsym), dtype=np.uint8)
        for c in range(blocks.shape[1]):
            acc = table[acc, xs] ^ blocks[:, c, None]
        return acc

    def _decode_errata(
        self, row: np.ndarray, synd_row: np.ndarray, erase_pos: list[int]
    ) -> tuple[np.ndarray, int]:
        """Run the errata chain on one block (called only on bad blocks)."""
        length = int(row.size)
        synd = [int(s) for s in synd_row]
        fsynd = self._forney_syndromes(synd, erase_pos, length)
        err_loc = self._berlekamp_massey(fsynd, len(erase_pos))
        err_pos = self._find_errors_vec(err_loc[::-1], length)
        msg = self._correct_errata(
            [int(v) for v in row], synd, erase_pos + err_pos
        )
        fixed = np.asarray(msg, dtype=np.uint8)
        if self._syndromes_blocks(fixed[None, :]).any():
            raise RSDecodeError("residual syndromes after correction")
        return fixed, len(erase_pos) + len(err_pos)

    def _decode_errata_blocks(
        self,
        work: np.ndarray,
        synd: np.ndarray,
        erasures: list[list[int]],
        rows: np.ndarray,
        corrected: np.ndarray,
        ok: np.ndarray,
        errors: list[str | None],
    ) -> None:
        """Run the errata chain over every flagged block at once.

        Mirrors :meth:`_decode_errata` stage by stage — Forney-syndrome
        fold, Berlekamp-Massey, Chien search, Forney magnitudes, residual
        check — but each stage is numpy table gathers over the whole
        batch.  Polynomials live in fixed-width lowest-degree-first
        arrays with an explicit *formal length* per block (the scalar
        path's list length, leading zeros included), which is what the
        BM swap condition compares.  Blocks that fail a stage drop out of
        the batch with the same error strings the scalar path raises;
        the rest are corrected in ``work`` in place.
        """
        table = GF.mul_table
        nsym = self.nsym
        nmess = work.shape[1]

        idx = np.asarray(rows, dtype=np.int64)
        ecnt = np.array([len(erasures[i]) for i in idx], dtype=np.int64)
        w_era = max(int(ecnt.max()), 1)
        era = np.zeros((idx.size, w_era), dtype=np.int64)
        for r, i in enumerate(idx):
            era[r, : len(erasures[i])] = erasures[i]

        # -- Forney syndromes: fold erasures out, one pass per slot ------
        srows = synd[idx].astype(np.intp)
        fsynd = srows.copy()
        for k in range(int(ecnt.max())):
            live = (k < ecnt)[:, None]
            x = GF.exp_vec(nmess - 1 - era[:, k]).astype(np.intp)
            folded = table[fsynd[:, :-1], x[:, None]] ^ fsynd[:, 1:]
            fsynd[:, :-1] = np.where(live, folded, fsynd[:, :-1])

        # -- Berlekamp-Massey with per-block iteration counts ------------
        width = nsym + 2  # formal lengths never exceed nsym + 1
        loc = np.zeros((idx.size, width), dtype=np.intp)
        old = np.zeros((idx.size, width), dtype=np.intp)
        loc[:, 0] = 1
        old[:, 0] = 1
        err_len = np.ones(idx.size, dtype=np.int64)
        old_len = np.ones(idx.size, dtype=np.int64)
        iters = nsym - ecnt
        delta = np.zeros(idx.size, dtype=np.intp)
        for i in range(int(iters.max())):
            active = i < iters
            delta[:] = 0
            for j in range(min(i + 1, width)):
                delta ^= table[loc[:, j], fsynd[:, i - j]]
            shifted = np.zeros_like(old)  # old <- old + [0]
            shifted[:, 1:] = old[:, :-1]
            old = np.where(active[:, None], shifted, old)
            old_len = old_len + active
            upd = active & (delta != 0)
            swap = upd & (old_len > err_len)
            sw = swap[:, None]
            inv_d = GF.inv_vec(np.where(delta == 0, 1, delta)).astype(np.intp)
            loc, old = (
                np.where(sw, table[old, delta[:, None]], loc),
                np.where(sw, table[loc, inv_d[:, None]], old),
            )
            err_len, old_len = (
                np.where(swap, old_len, err_len),
                np.where(swap, err_len, old_len),
            )
            d_old = table[old, delta[:, None]]
            loc = np.where(upd[:, None], loc ^ d_old, loc)
            err_len = np.where(upd, np.maximum(err_len, old_len), err_len)

        # Formal degree = highest nonzero coefficient (loc[:, 0] is 1).
        support = (loc != 0) & (np.arange(width)[None, :] < err_len[:, None])
        errs = (width - 1) - np.argmax(support[:, ::-1], axis=1)

        bad = errs * 2 + ecnt > nsym
        for r in np.nonzero(bad)[0]:
            ok[idx[r]] = False
            errors[idx[r]] = (
                f"{errs[r]} errors + {ecnt[r]} erasures exceed capacity {nsym}"
            )
        alive = ~bad
        if not alive.any():
            return
        idx, ecnt, era, errs = idx[alive], ecnt[alive], era[alive], errs[alive]
        loc, srows = loc[alive], srows[alive]

        # -- Chien search: evaluate the locator at alpha^0..alpha^(L-1) --
        # loc is the reversed locator plus a power-of-x factor from the
        # fixed width, which shifts no roots.
        points = GF.exp_vec(np.arange(nmess)).astype(np.intp)
        acc = np.zeros((idx.size, nmess), dtype=np.intp)
        for j in range(width):
            acc = table[acc, points[None, :]] ^ loc[:, j : j + 1]
        is_root = acc == 0
        bad = is_root.sum(axis=1) != errs
        for r in np.nonzero(bad)[0]:
            ok[idx[r]] = False
            errors[idx[r]] = (
                "could not locate all errors (beyond correction capacity)"
            )
        alive = ~bad
        if not alive.any():
            return
        idx, ecnt, era, errs = idx[alive], ecnt[alive], era[alive], errs[alive]
        srows, is_root = srows[alive], is_root[alive]

        # -- Forney magnitudes over the padded errata-position matrix ----
        e_tot = ecnt + errs
        e_max = max(int(e_tot.max()), 1)
        slots = np.arange(e_max)[None, :]
        epos = np.zeros((idx.size, e_max), dtype=np.int64)
        w = min(era.shape[1], e_max)  # dropped rows may have shrunk e_max
        emask = slots[:, :w] < ecnt[:, None]
        epos[:, :w][emask] = era[:, :w][emask]
        rr, cc = np.nonzero(is_root)
        epos[rr, ecnt[rr] + (np.arange(rr.size) - np.searchsorted(rr, rr))] = (
            nmess - 1 - cc
        )

        valid = slots < e_tot[:, None]
        coef = nmess - 1 - epos
        xs = np.where(valid, GF.exp_vec(coef), 0).astype(np.intp)
        xs_inv = np.where(valid, GF.exp_vec(-coef), 0).astype(np.intp)

        # Errata locator lambda(x) = prod (1 + X_k x), lowest degree first.
        lam = np.zeros((idx.size, e_max + 1), dtype=np.intp)
        lam[:, 0] = 1
        for k in range(e_max):
            live = (k < e_tot)[:, None]
            nxt = lam.copy()
            nxt[:, 1:] ^= table[lam[:, :-1], xs[:, k][:, None]]
            lam = np.where(live, nxt, lam)

        # omega = x*S(x)*lambda(x) mod x^(e+1), truncated per block.
        omega = np.zeros((idx.size, e_max + 1), dtype=np.intp)
        for j in range(1, e_max + 1):
            for b in range(j):
                omega[:, j] ^= table[lam[:, b], srows[:, j - 1 - b]]
        omega = np.where(np.arange(e_max + 1)[None, :] <= e_tot[:, None], omega, 0)

        # Denominator prod_{j != i} (1 + Xinv_i X_j); pads contribute 1.
        terms = table[xs_inv[:, :, None], xs[:, None, :]].astype(np.intp) ^ 1
        force_one = np.eye(e_max, dtype=bool)[None, :, :] | ~valid[:, None, :]
        terms = np.where(force_one, 1, terms)
        lp = np.ones((idx.size, e_max), dtype=np.intp)
        for j in range(e_max):
            lp = table[lp, terms[:, :, j]]
        bad = ((lp == 0) & valid).any(axis=1)
        for r in np.nonzero(bad)[0]:
            ok[idx[r]] = False
            errors[idx[r]] = "Forney denominator vanished"
        alive = ~bad
        if not alive.any():
            return
        idx, e_tot, epos = idx[alive], e_tot[alive], epos[alive]
        xs, xs_inv, omega, lp = xs[alive], xs_inv[alive], omega[alive], lp[alive]
        valid = valid[alive]

        # y_i = X_i * omega(Xinv_i); magnitude = y_i / lp_i.
        ev = np.zeros_like(lp)
        for j in range(e_max, -1, -1):
            ev = table[ev, xs_inv] ^ omega[:, j : j + 1]
        y = table[xs, ev]
        mag = table[y.astype(np.intp), GF.inv_vec(lp).astype(np.intp)]

        cand = work[idx].copy()
        for k in range(e_max):
            r = np.nonzero(k < e_tot)[0]
            cand[r, epos[r, k]] ^= mag[r, k]

        bad = self._syndromes_blocks(cand).any(axis=1)
        for r in np.nonzero(bad)[0]:
            ok[idx[r]] = False
            errors[idx[r]] = "residual syndromes after correction"
        good = ~bad
        work[idx[good]] = cand[good]
        corrected[idx[good]] = e_tot[good]

    @staticmethod
    def _find_errors_vec(err_loc_rev: list[int], nmess: int) -> list[int]:
        """Vectorised Chien search: evaluate the locator at every position.

        Same contract as :meth:`_find_errors`, but one
        :meth:`~repro.fec.galois.GF256.poly_eval_many` call replaces the
        per-position Horner loop.
        """
        errs = len(err_loc_rev) - 1
        points = GF.exp_vec(np.arange(nmess))
        values = GF.poly_eval_many(np.asarray(err_loc_rev), points)
        roots = np.nonzero(values == 0)[0]
        if roots.size != errs:
            raise RSDecodeError(
                "could not locate all errors (beyond correction capacity)"
            )
        return [nmess - 1 - int(i) for i in roots]

    # -- scalar decoding internals ----------------------------------------------

    def _syndromes(self, msg: list[int]) -> list[int]:
        return [_poly_eval(msg, GF.exp(i)) for i in range(self.nsym)]

    def _forney_syndromes(
        self, synd: list[int], erase_pos: list[int], nmess: int
    ) -> list[int]:
        """Fold known erasure locations out of the syndromes so BM only has
        to find the unknown error positions."""
        fsynd = list(synd)
        for pos in erase_pos:
            x = GF.exp(nmess - 1 - pos)
            for j in range(len(fsynd) - 1):
                fsynd[j] = GF.mul(fsynd[j], x) ^ fsynd[j + 1]
        return fsynd

    def _berlekamp_massey(self, synd: list[int], erase_count: int) -> list[int]:
        """Find the error locator polynomial (highest degree first)."""
        err_loc = [1]
        old_loc = [1]
        for i in range(self.nsym - erase_count):
            delta = synd[i]
            for j in range(1, len(err_loc)):
                delta ^= GF.mul(err_loc[-(j + 1)], synd[i - j])
            old_loc = old_loc + [0]
            if delta != 0:
                if len(old_loc) > len(err_loc):
                    new_loc = _poly_scale(old_loc, delta)
                    old_loc = _poly_scale(err_loc, GF.inv(delta))
                    err_loc = new_loc
                err_loc = _poly_add(err_loc, _poly_scale(old_loc, delta))
        while len(err_loc) > 1 and err_loc[0] == 0:
            err_loc = err_loc[1:]
        errs = len(err_loc) - 1
        if errs * 2 + erase_count > self.nsym:
            raise RSDecodeError(
                f"{errs} errors + {erase_count} erasures exceed capacity {self.nsym}"
            )
        return err_loc

    @staticmethod
    def _find_errors(err_loc_rev: list[int], nmess: int) -> list[int]:
        """Chien-style exhaustive root search over the message span.

        ``err_loc_rev`` is the locator with *reversed* coefficients, so
        its roots sit at alpha^(coef_pos) — exponents within the message
        span — rather than at the inverses.
        """
        errs = len(err_loc_rev) - 1
        err_pos = []
        for i in range(nmess):
            if _poly_eval(err_loc_rev, GF.exp(i)) == 0:
                err_pos.append(nmess - 1 - i)
        if len(err_pos) != errs:
            raise RSDecodeError(
                "could not locate all errors (beyond correction capacity)"
            )
        return err_pos

    def _correct_errata(
        self, msg: list[int], synd: list[int], err_pos: list[int]
    ) -> list[int]:
        """Forney algorithm: compute and subtract errata magnitudes."""
        coef_pos = [len(msg) - 1 - p for p in err_pos]
        err_loc = self._errata_locator(coef_pos)
        # Error evaluator omega(x) = x*S(x)*Lambda(x) mod x^(e+1).  The
        # extra x factor (a zero-padded syndrome list) is what makes the
        # product form of the locator derivative below come out right.
        padded_synd = [0] + synd
        rem = _poly_mul(padded_synd[::-1], err_loc)
        err_eval = rem[len(rem) - len(err_loc) :]

        x_points = [GF.exp(-(255 - c)) for c in coef_pos]
        out = list(msg)
        for i, xi in enumerate(x_points):
            xi_inv = GF.inv(xi)
            loc_prime = 1
            for j, xj in enumerate(x_points):
                if j != i:
                    loc_prime = GF.mul(loc_prime, 1 ^ GF.mul(xi_inv, xj))
            if loc_prime == 0:
                raise RSDecodeError("Forney denominator vanished")
            y = GF.mul(xi, _poly_eval(err_eval, xi_inv))
            out[err_pos[i]] ^= GF.div(y, loc_prime)
        return out

    @staticmethod
    def _errata_locator(coef_pos: list[int]) -> list[int]:
        loc = [1]
        for pos in coef_pos:
            loc = _poly_mul(loc, _poly_add([1], [GF.exp(pos), 0]))
        return loc
