"""Cyclic redundancy checks.

SONIC frames carry a CRC-32 (the Quiet ``crc32`` checksum) that gates
frame acceptance after FEC decoding: a frame whose checksum fails is a
*lost frame* in the paper's terminology.  CRC-16-CCITT and CRC-8 are used
by the lighter-weight control paths (SMS protocol, RDS groups).

All three are table-driven implementations built here rather than taken
from :mod:`zlib`, so that the bit conventions are explicit and testable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["crc32_ieee", "crc16_ccitt", "crc8"]


def _reflected_table(poly: int, width: int) -> np.ndarray:
    """Build a 256-entry table for a reflected (LSB-first) CRC."""
    mask = (1 << width) - 1
    table = np.zeros(256, dtype=np.uint64)
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
        table[byte] = crc & mask
    return table


def _forward_table(poly: int, width: int) -> np.ndarray:
    """Build a 256-entry table for a non-reflected (MSB-first) CRC."""
    mask = (1 << width) - 1
    top = 1 << (width - 1)
    table = np.zeros(256, dtype=np.uint64)
    for byte in range(256):
        crc = byte << (width - 8)
        for _ in range(8):
            if crc & top:
                crc = ((crc << 1) ^ poly) & mask
            else:
                crc = (crc << 1) & mask
        table[byte] = crc
    return table


_CRC32_TABLE = _reflected_table(0xEDB88320, 32)
_CRC16_TABLE = _forward_table(0x1021, 16)
_CRC8_TABLE = _forward_table(0x07, 8)


def crc32_ieee(data: bytes | bytearray, initial: int = 0) -> int:
    """CRC-32/IEEE-802.3 (the polynomial used by zlib and by Quiet).

    ``initial`` allows incremental computation over chunked input:
    ``crc32_ieee(b, crc32_ieee(a)) == crc32_ieee(a + b)``.
    """
    crc = (initial ^ 0xFFFFFFFF) & 0xFFFFFFFF
    for byte in bytes(data):
        crc = int(_CRC32_TABLE[(crc ^ byte) & 0xFF]) ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def crc16_ccitt(data: bytes | bytearray, initial: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE, MSB-first with init 0xFFFF."""
    crc = initial & 0xFFFF
    for byte in bytes(data):
        crc = (int(_CRC16_TABLE[((crc >> 8) ^ byte) & 0xFF]) ^ (crc << 8)) & 0xFFFF
    return crc


def crc8(data: bytes | bytearray, initial: int = 0) -> int:
    """CRC-8 with polynomial 0x07 (ATM HEC)."""
    crc = initial & 0xFF
    for byte in bytes(data):
        crc = int(_CRC8_TABLE[crc ^ byte]) & 0xFF
    return crc
