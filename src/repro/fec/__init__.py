"""Forward error correction stack.

SONIC (via the Quiet library) protects each 100-byte frame with a CRC-32
checksum, an inner convolutional code decoded with Viterbi (Quiet profile
``v29``), and an outer Reed-Solomon code over GF(256) (Quiet profile
``rs8``).  This package implements all three from scratch, plus the block
interleaver that spreads RS symbols across the convolutional stream.
"""

from repro.fec.crc import crc8, crc16_ccitt, crc32_ieee
from repro.fec.galois import GF256
from repro.fec.reed_solomon import RSDecodeError, ReedSolomon
from repro.fec.convolutional import ConvolutionalCode, CONV_V27, CONV_V29
from repro.fec.interleaver import BlockInterleaver

__all__ = [
    "crc8",
    "crc16_ccitt",
    "crc32_ieee",
    "GF256",
    "ReedSolomon",
    "RSDecodeError",
    "ConvolutionalCode",
    "CONV_V27",
    "CONV_V29",
    "BlockInterleaver",
]
