"""Rate-1/n convolutional codes with a vectorised Viterbi decoder.

The inner code of the SONIC frame pipeline.  Quiet's ``v27`` and ``v29``
FEC schemes are the classic rate-1/2 convolutional codes with constraint
length 7 (NASA polynomials 0o171/0o133) and 9 (0o753/0o561); both are
provided here as module-level singletons.

Encoding is a binary convolution; decoding runs add-compare-select over
all ``2^(K-1)`` trellis states with numpy, supporting both hard-decision
(bit) and soft-decision (bipolar amplitude) inputs.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as sp_fft

from repro.util.bits import pad_bits

__all__ = ["ConvolutionalCode", "CONV_V27", "CONV_V29"]


class ConvolutionalCode:
    """A rate 1/n feed-forward convolutional code.

    Parameters
    ----------
    constraint:
        Constraint length K (the encoder window, including the current
        input bit).
    polys:
        Generator polynomials, one per output bit, given as integers whose
        MSB (bit K-1) taps the *current* input bit.
    """

    def __init__(self, constraint: int, polys: tuple[int, ...]) -> None:
        if not 3 <= constraint <= 12:
            raise ValueError(f"constraint length {constraint} out of range [3, 12]")
        if len(polys) < 2:
            raise ValueError("need at least two generator polynomials")
        mask = (1 << constraint) - 1
        if any(p <= 0 or p > mask for p in polys):
            raise ValueError("generator polynomial does not fit constraint length")
        self.constraint = constraint
        self.polys = tuple(polys)
        self.n_out = len(polys)
        self.n_states = 1 << (constraint - 1)
        self._build_trellis()

    @property
    def rate(self) -> float:
        """Information bits per coded bit (ignoring the tail)."""
        return 1.0 / self.n_out

    def _build_trellis(self) -> None:
        k = self.constraint
        s = self.n_states
        low_mask = (1 << (k - 2)) - 1 if k > 2 else 0
        # For each next-state, its two predecessors and the branch outputs.
        next_states = np.arange(s)
        self._input_bit = (next_states >> (k - 2)).astype(np.int64)
        low = next_states & low_mask
        self._preds = np.stack([2 * low, 2 * low + 1], axis=1)  # (s, 2)

        # branch_bits[ns, p, j] = j-th output bit on the branch preds[ns,p] -> ns
        branch = np.zeros((s, 2, self.n_out), dtype=np.int8)
        for ns in range(s):
            bit = int(self._input_bit[ns])
            for p_idx in range(2):
                pred = int(self._preds[ns, p_idx])
                window = (bit << (k - 1)) | pred
                for j, poly in enumerate(self.polys):
                    branch[ns, p_idx, j] = bin(window & poly).count("1") & 1
        self._branch_bits = branch
        # Bipolar form (+1 for bit 0, -1 for bit 1) for soft metrics.
        self._branch_bipolar = (1 - 2 * branch.astype(np.float64))
        # A rate-1/n branch metric takes at most 2^n distinct values per
        # bit time (one per output-bit pattern); decoding gathers them
        # from a small combo table instead of a per-branch matmul.
        weights = 1 << np.arange(self.n_out - 1, -1, -1)
        self._branch_pattern = (
            (branch.astype(np.int64) * weights).sum(axis=2).reshape(-1)
        )  # (n_states * 2,) pattern index per branch, trellis order
        patterns = (
            (np.arange(1 << self.n_out)[:, None] >> np.arange(self.n_out - 1, -1, -1))
            & 1
        )
        self._pattern_bipolar = (1.0 - 2.0 * patterns).T  # (n_out, 2^n_out)
        # The MSB of the first polynomial taps the current input bit; when
        # set, a clean hard-decision stream can be inverted algebraically.
        self._invertible = bool((self.polys[0] >> (k - 1)) & 1)
        self._poly0_feedback_taps = [
            i for i in range(1, k) if (self.polys[0] >> (k - 1 - i)) & 1
        ]
        self._inverse_impulse = np.zeros(0, dtype=np.uint8)  # grown on demand

    # -- encoding ------------------------------------------------------------

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode an information bit vector, appending K-1 flush bits.

        Returns ``(len(bits) + K - 1) * n_out`` coded bits, interleaved as
        output0, output1, ... per input bit.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1 or bits.size == 0:
            raise ValueError("expected a non-empty 1-D bit vector")
        k = self.constraint
        flushed = np.concatenate([bits, np.zeros(k - 1, dtype=np.uint8)])
        outputs = []
        for poly in self.polys:
            taps = np.array(
                [(poly >> (k - 1 - i)) & 1 for i in range(k)], dtype=np.uint8
            )
            conv = np.convolve(flushed, taps) % 2
            outputs.append(conv[: flushed.size])
        return np.stack(outputs, axis=1).reshape(-1).astype(np.uint8)

    def encode_batch(self, bits: np.ndarray) -> np.ndarray:
        """Encode a ``(n_frames, n_info_bits)`` stack of bit vectors at once.

        Each row is flushed and encoded independently (identical output to
        :meth:`encode` per row).  The binary convolution is computed as an
        XOR of tap-shifted copies, so the cost per tap is one vectorised
        pass over the whole stack.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 2 or bits.shape[1] == 0:
            raise ValueError("expected a non-empty (n_frames, n_bits) array")
        k = self.constraint
        n, n_info = bits.shape
        total = n_info + k - 1
        flushed = np.zeros((n, total), dtype=np.uint8)
        flushed[:, :n_info] = bits
        out = np.zeros((n, total, self.n_out), dtype=np.uint8)
        for j, poly in enumerate(self.polys):
            acc = out[:, :, j]
            for i in range(k):
                if (poly >> (k - 1 - i)) & 1:
                    acc[:, i:] ^= flushed[:, : total - i]
        return out.reshape(n, -1)

    def coded_length(self, n_info_bits: int) -> int:
        """Number of coded bits produced for ``n_info_bits`` inputs."""
        return (n_info_bits + self.constraint - 1) * self.n_out

    # -- decoding ------------------------------------------------------------

    def decode(self, coded_bits: np.ndarray, n_info_bits: int) -> np.ndarray:
        """Hard-decision Viterbi decode (input bits, 0/1)."""
        hard = np.asarray(coded_bits, dtype=np.uint8)
        soft = 1.0 - 2.0 * hard.astype(np.float64)
        return self.decode_soft(soft, n_info_bits)

    def decode_soft(self, soft_bits: np.ndarray, n_info_bits: int) -> np.ndarray:
        """Soft-decision Viterbi decode of one frame.

        ``soft_bits`` are bipolar amplitudes: positive values favour bit 0,
        negative favour bit 1; magnitude expresses confidence.  Runs the
        batched kernel on a single row; bit-identical to
        :meth:`decode_soft_ref`.
        """
        soft = np.asarray(soft_bits, dtype=np.float64)
        if soft.ndim != 1:
            raise ValueError(f"expected a 1-D soft bit vector, got {soft.shape}")
        return self.decode_soft_batch(soft[None, :], n_info_bits)[0]

    def decode_soft_ref(self, soft_bits: np.ndarray, n_info_bits: int) -> np.ndarray:
        """Golden scalar Viterbi reference (the seed implementation).

        One add-compare-select pass per bit time over a ``(n_states,)``
        metric vector; kept as the model the property tests pin the
        batched kernel against.
        """
        soft = np.asarray(soft_bits, dtype=np.float64)
        total = n_info_bits + self.constraint - 1
        expected = total * self.n_out
        if soft.size != expected:
            raise ValueError(
                f"expected {expected} coded bits for {n_info_bits} info bits, "
                f"got {soft.size}"
            )
        symbols = soft.reshape(total, self.n_out)

        s = self.n_states
        metrics = np.full(s, -np.inf)
        metrics[0] = 0.0  # encoder starts zero-filled
        decisions = np.zeros((total, s), dtype=np.uint8)
        preds = self._preds
        bipolar = self._branch_bipolar  # (s, 2, n_out)

        for t in range(total):
            # Correlation branch metric: sum soft * expected_bipolar.
            bm = bipolar @ symbols[t]  # (s, 2)
            cand = metrics[preds] + bm  # (s, 2)
            choice = np.argmax(cand, axis=1).astype(np.uint8)
            metrics = cand[np.arange(s), choice]
            decisions[t] = choice

        # The flush bits force the encoder back to state 0.
        state = 0
        out = np.zeros(total, dtype=np.uint8)
        for t in range(total - 1, -1, -1):
            out[t] = self._input_bit[state]
            state = int(preds[state, decisions[t, state]])
        return out[:n_info_bits]

    #: frames decoded per kernel invocation (bounds the decision buffer)
    _FRAME_CHUNK = 128

    def decode_soft_batch(
        self, soft_bits: np.ndarray, n_info_bits: int
    ) -> np.ndarray:
        """Soft-decision Viterbi decode of a ``(n_frames, coded)`` stack.

        Each frame runs its own terminated trellis (the flush bits end
        every frame in state 0, so frames cannot share one trellis pass),
        but the add-compare-select recursion at each bit time runs over
        all frames simultaneously — the Python-level loop count no longer
        scales with the number of frames.  Identical output to
        :meth:`decode_soft_ref` row by row.

        The kernel exploits the trellis structure instead of gathering:
        with ``ns = bit * 2^(K-2) + low`` the two predecessors of ``ns``
        are ``2*low`` and ``2*low + 1`` regardless of ``bit``, so the
        path-metric spread is a reshape broadcast, and all branch metrics
        are precomputed in chunked matmuls rather than one small GEMV per
        bit time.  Frames are processed in chunks so the decision buffer
        stays bounded for fleet-sized batches.
        """
        soft = np.asarray(soft_bits, dtype=np.float64)
        if soft.ndim != 2:
            raise ValueError(f"expected a (n_frames, coded) array, got {soft.shape}")
        total = n_info_bits + self.constraint - 1
        expected = total * self.n_out
        if soft.shape[1] != expected:
            raise ValueError(
                f"expected {expected} coded bits for {n_info_bits} info bits, "
                f"got {soft.shape[1]}"
            )
        n = soft.shape[0]
        out = np.empty((n, total), dtype=np.uint8)

        # Fast path: when the hard decisions of a frame already form a
        # valid codeword and no soft bit sits exactly on the slicer
        # boundary, every competing codeword differs in >= dfree positions
        # and each strictly lowers the correlation metric — the maximum-
        # likelihood decision is forced, so the trellis search is provably
        # redundant.  Clean broadcast frames (the common case) take this
        # O(total) algebraic inversion instead of the full ACS recursion.
        slow = np.arange(n)
        if self._invertible:
            hard = (soft < 0).astype(np.uint8)
            inverted = self._invert_hard(hard.reshape(n, total, self.n_out)[:, :, 0])
            clean = ~np.logical_or.reduce(soft == 0.0, axis=1)
            np.logical_and(
                clean,
                (self.encode_batch(inverted[:, :n_info_bits]) == hard).all(axis=1)
                if n_info_bits > 0
                else False,
                out=clean,
            )
            out[clean] = inverted[clean]
            slow = np.nonzero(~clean)[0]

        for i in range(0, slow.size, self._FRAME_CHUNK):
            rows = slow[i : i + self._FRAME_CHUNK]
            out[rows] = self._decode_soft_kernel(soft[rows], total)
        return out[:, :n_info_bits]

    def _invert_hard(self, hard0: np.ndarray) -> np.ndarray:
        """Recover input bits from the first output stream's hard bits.

        ``out0[t] = b[t] ^ (feedback taps of b[t-1..t-K+1])`` because the
        first polynomial taps the current bit, so the information sequence
        follows by forward substitution.

        The recurrence is a linear time-invariant filter over GF(2), so
        instead of stepping it per bit time the whole batch convolves
        with the filter's impulse response (cached, grown on demand):
        integer-count convolution via FFT, reduced mod 2.  Counts stay
        far below 2^53, so the rounding is exact and the result is
        bit-identical to the sequential substitution.
        """
        n, total = hard0.shape
        g = self._impulse_response(total)
        nfft = sp_fft.next_fast_len(2 * total - 1, True)
        conv = sp_fft.irfft(
            sp_fft.rfft(hard0, nfft, axis=1) * sp_fft.rfft(g, nfft), nfft, axis=1
        )[:, :total]
        return (np.rint(conv).astype(np.int64) & 1).astype(np.uint8)

    def _impulse_response(self, total: int) -> np.ndarray:
        """First ``total`` bits of the GF(2) inverse filter 1/poly0."""
        if self._inverse_impulse.size < total:
            g = np.zeros(total, dtype=np.uint8)
            taps = self._poly0_feedback_taps
            for t in range(total):
                acc = 1 if t == 0 else 0
                for i in taps:
                    if i <= t:
                        acc ^= int(g[t - i])
                g[t] = acc
            self._inverse_impulse = g
        return self._inverse_impulse[:total]

    def _decode_soft_kernel(self, soft: np.ndarray, total: int) -> np.ndarray:
        """Batched forward ACS + traceback over one frame chunk."""
        n = soft.shape[0]
        s = self.n_states
        half = s // 2
        # (time, frame, coded-bit) layout, then one matmul for the 2^n_out
        # distinct branch-metric values per (time, frame) — the full
        # per-branch table would be s*2/2^n_out times larger and blow the
        # cache for fleet-sized batches.
        symbols = np.ascontiguousarray(
            soft.reshape(n, total, self.n_out).transpose(1, 0, 2)
        )
        combos = (
            symbols.reshape(total * n, self.n_out) @ self._pattern_bipolar
        ).reshape(total, n, -1)
        pattern = self._branch_pattern  # (s*2,) in trellis order

        metrics = np.full((n, s), -np.inf)
        metrics[:, 0] = 0.0  # every encoder starts zero-filled
        decisions = np.empty((total, n, 2, half), dtype=bool)
        step = np.empty((n, s * 2))
        cand = step.reshape(n, 2, half, 2)

        for t in range(total):
            # Branch metrics for every branch: one cached gather.
            np.take(combos[t], pattern, axis=1, out=step)
            # Predecessors of ns = bit*half + low are 2*low and
            # 2*low + 1 for both values of bit: a reshape, no gather.
            cand += metrics.reshape(n, 1, half, 2)
            c0 = cand[..., 0]
            c1 = cand[..., 1]
            # Strict > resolves ties to predecessor 0, matching the
            # scalar reference's argmax.
            np.greater(c1, c0, out=decisions[t])
            np.maximum(c0, c1, out=metrics.reshape(n, 2, half))

        # The flush bits force every encoder back to state 0; walk the
        # survivors backwards.  State arithmetic replaces table gathers:
        # input bit = ns >> (K-2), predecessor = 2*(ns & (half-1)) + choice.
        shift = self.constraint - 2
        low_mask = half - 1
        state = np.zeros(n, dtype=np.intp)
        rows = np.arange(n)
        out = np.empty((n, total), dtype=np.uint8)
        dec_flat = decisions.reshape(total, n, s)
        for t in range(total - 1, -1, -1):
            out[:, t] = state >> shift
            choice = dec_flat[t, rows, state]
            state = ((state & low_mask) << 1) + choice
        return out


#: Quiet's ``v27``: K=7 rate-1/2 NASA-standard code.
CONV_V27 = ConvolutionalCode(7, (0o171, 0o133))

#: Quiet's ``v29``: K=9 rate-1/2 code (the profile SONIC uses).
CONV_V29 = ConvolutionalCode(9, (0o753, 0o561))
