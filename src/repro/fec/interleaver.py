"""Block interleaving.

Viterbi decoding turns channel noise into short *bursts* of byte errors,
which would quickly exhaust a Reed-Solomon block's correction budget if
they landed consecutively.  Writing symbols into a rows x cols matrix and
reading it out column-wise spreads any burst of up to ``rows`` symbols
across different RS codewords.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BlockInterleaver"]


class BlockInterleaver:
    """A rows x cols block interleaver over arbitrary numpy vectors."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be positive")
        self.rows = rows
        self.cols = cols

    @property
    def size(self) -> int:
        """Number of elements per interleaving block."""
        return self.rows * self.cols

    def interleave(self, values: np.ndarray) -> np.ndarray:
        """Permute ``values`` (length must equal :attr:`size`)."""
        values = np.asarray(values)
        if values.size != self.size:
            raise ValueError(
                f"expected {self.size} elements, got {values.size}"
            )
        return values.reshape(self.rows, self.cols).T.reshape(-1)

    def deinterleave(self, values: np.ndarray) -> np.ndarray:
        """Invert :meth:`interleave`."""
        values = np.asarray(values)
        if values.size != self.size:
            raise ValueError(
                f"expected {self.size} elements, got {values.size}"
            )
        return values.reshape(self.cols, self.rows).T.reshape(-1)

    # -- batch entry points (one row per frame) -----------------------------

    def interleave_many(self, values: np.ndarray) -> np.ndarray:
        """Permute each row of a ``(n_frames, size)`` array independently."""
        values = np.asarray(values)
        if values.ndim != 2 or values.shape[1] != self.size:
            raise ValueError(
                f"expected (n, {self.size}) array, got {values.shape}"
            )
        n = values.shape[0]
        return values.reshape(n, self.rows, self.cols).transpose(0, 2, 1).reshape(n, -1)

    def deinterleave_many(self, values: np.ndarray) -> np.ndarray:
        """Invert :meth:`interleave_many` row-wise."""
        values = np.asarray(values)
        if values.ndim != 2 or values.shape[1] != self.size:
            raise ValueError(
                f"expected (n, {self.size}) array, got {values.shape}"
            )
        n = values.shape[0]
        return values.reshape(n, self.cols, self.rows).transpose(0, 2, 1).reshape(n, -1)
