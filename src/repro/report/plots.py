"""Chart builders on top of :class:`repro.report.svg.SvgCanvas`.

Just enough chart grammar for the paper's figures: multi-series line
charts (Figure 4(c)), CDFs (Figure 4(b)), and grouped boxplots
(Figures 4(a) and 5).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.report.svg import SvgCanvas

__all__ = ["line_chart", "cdf_chart", "box_plot", "scatter_chart"]

_PALETTE = ["#1565c0", "#e65100", "#2e7d32", "#8e24aa", "#c62828", "#00838f"]
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 64, 20, 36, 52


def _nice_ticks(lo: float, hi: float, target: int = 5) -> list[float]:
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / target
    magnitude = 10 ** np.floor(np.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if raw <= step:
            break
    first = np.ceil(lo / step) * step
    return [float(v) for v in np.arange(first, hi + step / 2, step)]


class _Axes:
    """Maps data coordinates to canvas pixels and draws the frame."""

    def __init__(
        self,
        canvas: SvgCanvas,
        x_range: tuple[float, float],
        y_range: tuple[float, float],
        title: str,
        x_label: str,
        y_label: str,
    ) -> None:
        self.canvas = canvas
        self.x0, self.x1 = x_range
        self.y0, self.y1 = y_range
        self.px0, self.px1 = _MARGIN_L, canvas.width - _MARGIN_R
        self.py0, self.py1 = canvas.height - _MARGIN_B, _MARGIN_T
        canvas.text(canvas.width / 2, 20, title, size=13, anchor="middle")
        canvas.text(canvas.width / 2, canvas.height - 10, x_label, anchor="middle")
        canvas.text(16, canvas.height / 2, y_label, anchor="middle", rotate=-90)
        canvas.rect(self.px0, self.py1, self.px1 - self.px0, self.py0 - self.py1)
        for tick in _nice_ticks(self.y0, self.y1):
            y = self.py(tick)
            if self.py1 - 1 <= y <= self.py0 + 1:
                canvas.line(self.px0, y, self.px1, y, stroke="#ddd")
                canvas.text(self.px0 - 6, y + 4, f"{tick:g}", anchor="end", size=10)
        for tick in _nice_ticks(self.x0, self.x1):
            x = self.px(tick)
            if self.px0 - 1 <= x <= self.px1 + 1:
                canvas.line(x, self.py0, x, self.py0 + 4)
                canvas.text(x, self.py0 + 16, f"{tick:g}", anchor="middle", size=10)

    def px(self, x: float) -> float:
        span = self.x1 - self.x0 or 1.0
        return self.px0 + (x - self.x0) / span * (self.px1 - self.px0)

    def py(self, y: float) -> float:
        span = self.y1 - self.y0 or 1.0
        return self.py0 - (y - self.y0) / span * (self.py0 - self.py1)


def _legend(canvas: SvgCanvas, labels: list[str]) -> None:
    x = _MARGIN_L + 10
    y = _MARGIN_T + 14
    for i, label in enumerate(labels):
        color = _PALETTE[i % len(_PALETTE)]
        canvas.line(x, y - 4, x + 18, y - 4, stroke=color, width=2.5)
        canvas.text(x + 24, y, label, size=10)
        y += 15


def line_chart(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    path: str | Path,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    size: tuple[int, int] = (640, 360),
) -> None:
    """Multi-series line chart; ``series`` maps label -> (x, y) arrays."""
    if not series:
        raise ValueError("need at least one series")
    xs = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    canvas = SvgCanvas(*size)
    axes = _Axes(
        canvas,
        (float(xs.min()), float(xs.max())),
        (min(0.0, float(ys.min())), float(ys.max()) * 1.05),
        title, x_label, y_label,
    )
    for i, (label, (x, y)) in enumerate(series.items()):
        color = _PALETTE[i % len(_PALETTE)]
        points = [(axes.px(a), axes.py(b)) for a, b in zip(x, y)]
        canvas.polyline(points, stroke=color)
    _legend(canvas, list(series))
    canvas.save(path)


def cdf_chart(
    samples: dict[str, np.ndarray],
    path: str | Path,
    title: str = "",
    x_label: str = "",
    size: tuple[int, int] = (640, 360),
) -> None:
    """Empirical CDFs of several sample sets."""
    if not samples:
        raise ValueError("need at least one sample set")
    all_values = np.concatenate([np.asarray(v, dtype=float) for v in samples.values()])
    canvas = SvgCanvas(*size)
    axes = _Axes(
        canvas,
        (float(all_values.min()), float(all_values.max())),
        (0.0, 1.0),
        title, x_label, "CDF",
    )
    for i, (label, values) in enumerate(samples.items()):
        ordered = np.sort(np.asarray(values, dtype=float))
        fractions = np.arange(1, ordered.size + 1) / ordered.size
        points = [(axes.px(v), axes.py(f)) for v, f in zip(ordered, fractions)]
        canvas.polyline(points, stroke=_PALETTE[i % len(_PALETTE)])
    _legend(canvas, list(samples))
    canvas.save(path)


def scatter_chart(
    points: dict[str, tuple[float, float]],
    path: str | Path,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    size: tuple[int, int] = (640, 360),
) -> None:
    """Labelled scatter; ``points`` maps label -> one (x, y) point.

    Each label gets a palette colour, a dot and an annotation next to it
    (the tournament's rate-vs-robustness frontier has one point per
    modem profile, so labels-by-point beats a legend here).
    """
    if not points:
        raise ValueError("need at least one point")
    xs = np.array([p[0] for p in points.values()], dtype=float)
    ys = np.array([p[1] for p in points.values()], dtype=float)
    x_pad = (float(xs.max() - xs.min()) or 1.0) * 0.12
    canvas = SvgCanvas(*size)
    axes = _Axes(
        canvas,
        (float(xs.min()) - x_pad, float(xs.max()) + x_pad),
        (min(0.0, float(ys.min())), float(ys.max()) * 1.12),
        title, x_label, y_label,
    )
    for i, (label, (x, y)) in enumerate(points.items()):
        color = _PALETTE[i % len(_PALETTE)]
        cx, cy = axes.px(x), axes.py(y)
        canvas.circle(cx, cy, 5, fill=color)
        canvas.text(min(cx + 8, axes.px1 - 40), cy - 6, label, size=10)
    canvas.save(path)


def box_plot(
    groups: dict[str, np.ndarray],
    path: str | Path,
    title: str = "",
    y_label: str = "",
    size: tuple[int, int] = (640, 360),
    colors: list[str] | None = None,
) -> None:
    """Boxplots (median, quartiles, min/max whiskers) per labelled group."""
    if not groups:
        raise ValueError("need at least one group")
    all_values = np.concatenate([np.asarray(v, dtype=float) for v in groups.values()])
    canvas = SvgCanvas(*size)
    axes = _Axes(
        canvas,
        (0.0, float(len(groups))),
        (min(0.0, float(all_values.min())), float(all_values.max()) * 1.08),
        title, "", y_label,
    )
    palette = colors or _PALETTE
    slot = (axes.px1 - axes.px0) / len(groups)
    for i, (label, values) in enumerate(groups.items()):
        values = np.asarray(values, dtype=float)
        q1, median, q3 = np.percentile(values, [25, 50, 75])
        lo, hi = float(values.min()), float(values.max())
        cx = axes.px0 + (i + 0.5) * slot
        half = min(22.0, slot * 0.3)
        color = palette[i % len(palette)]
        canvas.line(cx, axes.py(lo), cx, axes.py(q1), stroke="#555")
        canvas.line(cx, axes.py(q3), cx, axes.py(hi), stroke="#555")
        canvas.line(cx - half / 2, axes.py(lo), cx + half / 2, axes.py(lo), stroke="#555")
        canvas.line(cx - half / 2, axes.py(hi), cx + half / 2, axes.py(hi), stroke="#555")
        canvas.rect(cx - half, axes.py(q3), 2 * half, axes.py(q1) - axes.py(q3),
                    fill=color, stroke="#333")
        canvas.line(cx - half, axes.py(median), cx + half, axes.py(median),
                    stroke="#111", width=2)
        canvas.text(cx, axes.py0 + 16, label, anchor="middle", size=10)
    canvas.save(path)
