"""Figure generation: dependency-free SVG charts.

The benchmarks print tables, but the paper's artifacts are *figures*;
this package renders line charts, CDFs and boxplots as standalone SVG
files (no matplotlib available offline) so every reproduced figure has a
visual counterpart under ``benchmarks/output/``.
"""

from repro.report.svg import SvgCanvas
from repro.report.plots import box_plot, cdf_chart, line_chart

__all__ = ["SvgCanvas", "line_chart", "cdf_chart", "box_plot"]
