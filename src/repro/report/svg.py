"""A minimal SVG canvas."""

from __future__ import annotations

from pathlib import Path

__all__ = ["SvgCanvas"]


def _esc(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


class SvgCanvas:
    """Accumulates SVG elements; coordinates in pixels, y grows down."""

    def __init__(self, width: int, height: int, background: str = "white") -> None:
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = width
        self.height = height
        self._parts: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str = "#333", width: float = 1.0, dash: str | None = None) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width}"{dash_attr}/>'
        )

    def polyline(self, points: list[tuple[float, float]], stroke: str = "#1565c0",
                 width: float = 1.5) -> None:
        if len(points) < 2:
            return
        joined = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self._parts.append(
            f'<polyline points="{joined}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>'
        )

    def rect(self, x: float, y: float, w: float, h: float,
             fill: str = "none", stroke: str = "#333", width: float = 1.0) -> None:
        self._parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="{width}"/>'
        )

    def circle(self, cx: float, cy: float, r: float, fill: str = "#333") -> None:
        self._parts.append(
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{r:.1f}" fill="{fill}"/>'
        )

    def text(self, x: float, y: float, content: str, size: int = 11,
             anchor: str = "start", color: str = "#222", rotate: float = 0.0) -> None:
        transform = (
            f' transform="rotate({rotate:.0f} {x:.1f} {y:.1f})"' if rotate else ""
        )
        self._parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'font-family="sans-serif" text-anchor="{anchor}" '
            f'fill="{color}"{transform}>{_esc(content)}</text>'
        )

    def to_string(self) -> str:
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_string())
